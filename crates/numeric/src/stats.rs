//! Descriptive statistics, running estimators and correlation tools used by
//! the Monte-Carlo observables and the randomness analysis of the
//! single-electron random-number generator.

use crate::error::NumericError;

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice. Returns `0.0` for slices shorter than 2.
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Root-mean-square value of a signal (used for the telegraph-noise RMS
/// figure of the SET random-number generator).
#[must_use]
pub fn rms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt()
}

/// Normalised autocorrelation of a signal at integer `lag`.
///
/// Returns `0.0` when there is not enough data or the signal has zero
/// variance.
#[must_use]
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    if values.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(values);
    let var = variance(values);
    if var == 0.0 {
        return 0.0;
    }
    let n = values.len() - lag;
    let cov: f64 = (0..n)
        .map(|i| (values[i] - m) * (values[i + lag] - m))
        .sum::<f64>()
        / n as f64;
    cov / var
}

/// Pearson correlation coefficient between two equally long signals.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the slices differ in
/// length, and [`NumericError::InvalidArgument`] if either has zero variance.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> Result<f64, NumericError> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            expected: format!("{} samples", a.len()),
            found: format!("{} samples", b.len()),
        });
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    if va == 0.0 || vb == 0.0 {
        return Err(NumericError::InvalidArgument(
            "cannot correlate a constant signal".into(),
        ));
    }
    let cov: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64;
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Linear regression `y = slope·x + intercept` by least squares.
///
/// Returns `(slope, intercept)`.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] on length mismatch and
/// [`NumericError::InvalidArgument`] when `x` has zero variance or fewer than
/// two samples are provided.
pub fn linear_regression(x: &[f64], y: &[f64]) -> Result<(f64, f64), NumericError> {
    if x.len() != y.len() {
        return Err(NumericError::DimensionMismatch {
            expected: format!("{} samples", x.len()),
            found: format!("{} samples", y.len()),
        });
    }
    if x.len() < 2 {
        return Err(NumericError::InvalidArgument(
            "linear regression needs at least two samples".into(),
        ));
    }
    let mx = mean(x);
    let my = mean(y);
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    if sxx == 0.0 {
        return Err(NumericError::InvalidArgument(
            "x values are all identical".into(),
        ));
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    Ok((slope, my - slope * mx))
}

/// Welford running estimator of mean and variance, suitable for streaming
/// Monte-Carlo observables without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a weighted sample, e.g. a dwell-time weighted Monte-Carlo state.
    pub fn push_weighted(&mut self, value: f64, weight: f64) {
        // Treat the weight as a (possibly fractional) repeat count by simple
        // accumulation; adequate for time-averaged KMC observables.
        if weight <= 0.0 {
            return;
        }
        let n = self.count as f64;
        let new_n = n + weight;
        let delta = value - self.mean;
        self.mean += delta * weight / new_n;
        self.m2 += weight * delta * (value - self.mean);
        self.count = new_n.round() as u64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples pushed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Current population variance (0 if fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Current standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observed sample (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed sample (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance(&data) - 4.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_do_not_panic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(autocorrelation(&[], 1), 0.0);
    }

    #[test]
    fn rms_of_square_wave_is_amplitude() {
        let signal = [0.12, -0.12, 0.12, -0.12, 0.12, -0.12];
        assert!((rms(&signal) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_alternating_signal_is_negative_at_lag_one() {
        let signal: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&signal, 1) < -0.9);
        assert!(autocorrelation(&signal, 2) > 0.9);
    }

    #[test]
    fn pearson_correlation_of_identical_signals_is_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let r = pearson_correlation(&a, &a).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant_signal() {
        let a = vec![1.0; 10];
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(pearson_correlation(&a, &b).is_err());
    }

    #[test]
    fn linear_regression_recovers_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let (slope, intercept) = linear_regression(&x, &y).unwrap();
        assert!((slope - 3.0).abs() < 1e-10);
        assert!((intercept + 7.0).abs() < 1e-9);
    }

    #[test]
    fn running_stats_matches_batch_stats() {
        let data = [1.5, 2.5, -0.5, 4.0, 3.25, 0.0, -2.0];
        let mut rs = RunningStats::new();
        for &v in &data {
            rs.push(v);
        }
        assert_eq!(rs.count(), data.len() as u64);
        assert!((rs.mean() - mean(&data)).abs() < 1e-12);
        assert!((rs.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(rs.min(), -2.0);
        assert_eq!(rs.max(), 4.0);
    }

    #[test]
    fn weighted_push_with_unit_weight_matches_push() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            a.push(v);
            b.push_weighted(v, 1.0);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-9);
    }

    proptest! {
        /// Shifting every sample by a constant shifts the mean but leaves the
        /// variance unchanged.
        #[test]
        fn prop_variance_is_shift_invariant(
            data in proptest::collection::vec(-100.0_f64..100.0, 2..64),
            shift in -50.0_f64..50.0,
        ) {
            let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
            prop_assert!((variance(&data) - variance(&shifted)).abs() < 1e-6);
            prop_assert!((mean(&shifted) - mean(&data) - shift).abs() < 1e-8);
        }

        /// The running estimator agrees with the batch formulas.
        #[test]
        fn prop_running_stats_agree_with_batch(
            data in proptest::collection::vec(-1e3_f64..1e3, 1..128),
        ) {
            let mut rs = RunningStats::new();
            for &v in &data {
                rs.push(v);
            }
            prop_assert!((rs.mean() - mean(&data)).abs() < 1e-6);
            prop_assert!((rs.variance() - variance(&data)).abs() < 1e-3);
        }
    }
}
