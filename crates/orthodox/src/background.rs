//! Background-charge processes.
//!
//! The paper's central argument is that single-electron *logic* has
//! historically been considered unrealistic because of its sensitivity to
//! random background charges: any trapped or slowly moving charge near an
//! island shifts the phase of the SET's periodic Id–Vg characteristic and
//! can flip a level-coded logic gate. This module models those disturbances
//! so the logic experiments (E1, E6) can inject them:
//!
//! * [`StaticOffsets`] — a fixed offset charge per island (a frozen
//!   disorder configuration);
//! * [`RandomTelegraphProcess`] — a two-state Markov trap that toggles an
//!   island's offset charge between `0` and an amplitude with given capture
//!   and emission rates (the "measured characteristics shifted over minutes
//!   to hours" phenomenon);
//! * [`DriftProcess`] — a bounded random walk of the offset charge, the
//!   slow-drift limit.

use crate::error::OrthodoxError;
use rand::Rng;

/// A frozen configuration of offset charges, one per island, in units of
/// the elementary charge `e`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticOffsets {
    charges: Vec<f64>,
}

impl StaticOffsets {
    /// Creates offsets for `islands` islands, all zero.
    #[must_use]
    pub fn zero(islands: usize) -> Self {
        StaticOffsets {
            charges: vec![0.0; islands],
        }
    }

    /// Creates offsets from explicit values (in units of `e`).
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        StaticOffsets { charges: values }
    }

    /// Draws each offset uniformly from `[-0.5, 0.5)` — the standard
    /// worst-case disorder model, since offsets are only meaningful modulo
    /// `e`.
    #[must_use]
    pub fn random_uniform<R: Rng + ?Sized>(rng: &mut R, islands: usize) -> Self {
        StaticOffsets {
            charges: (0..islands).map(|_| rng.gen::<f64>() - 0.5).collect(),
        }
    }

    /// Offset of island `i` in units of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn charge(&self, i: usize) -> f64 {
        self.charges[i]
    }

    /// All offsets.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.charges
    }

    /// Number of islands covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.charges.len()
    }

    /// Returns `true` if no islands are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.charges.is_empty()
    }
}

/// A single charge trap switching between "empty" (offset 0) and "occupied"
/// (offset `amplitude`, in units of `e`) with exponentially distributed dwell
/// times — a random telegraph signal.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomTelegraphProcess {
    /// Offset contributed when the trap is occupied, in units of `e`.
    amplitude: f64,
    /// Rate of the empty → occupied transition, in 1/s.
    capture_rate: f64,
    /// Rate of the occupied → empty transition, in 1/s.
    emission_rate: f64,
    /// Current trap occupation.
    occupied: bool,
    /// Time until the next switch, in seconds.
    time_to_switch: f64,
}

impl RandomTelegraphProcess {
    /// Creates a trap with the given amplitude (units of `e`) and switching
    /// rates (1/s), starting empty.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if either rate is not
    /// strictly positive and finite.
    pub fn new(
        amplitude: f64,
        capture_rate: f64,
        emission_rate: f64,
    ) -> Result<Self, OrthodoxError> {
        if !(capture_rate > 0.0) || !capture_rate.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "capture rate must be positive and finite, got {capture_rate}"
            )));
        }
        if !(emission_rate > 0.0) || !emission_rate.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "emission rate must be positive and finite, got {emission_rate}"
            )));
        }
        Ok(RandomTelegraphProcess {
            amplitude,
            capture_rate,
            emission_rate,
            occupied: false,
            time_to_switch: 0.0,
        })
    }

    /// Current offset contribution in units of `e`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        if self.occupied {
            self.amplitude
        } else {
            0.0
        }
    }

    /// Offset contributed while the trap is occupied, in units of `e`.
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Returns `true` if the trap is currently occupied.
    #[must_use]
    pub fn is_occupied(&self) -> bool {
        self.occupied
    }

    /// Advances the process by `dt` seconds, switching state as many times
    /// as the exponential dwell times dictate, and returns the offset after
    /// the step.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) -> f64 {
        let mut remaining = dt.max(0.0);
        loop {
            if self.time_to_switch <= 0.0 {
                self.time_to_switch = self.draw_dwell(rng);
            }
            if remaining < self.time_to_switch {
                self.time_to_switch -= remaining;
                break;
            }
            remaining -= self.time_to_switch;
            self.occupied = !self.occupied;
            self.time_to_switch = self.draw_dwell(rng);
        }
        self.offset()
    }

    fn draw_dwell<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let rate = if self.occupied {
            self.emission_rate
        } else {
            self.capture_rate
        };
        se_numeric::sampling::exponential_waiting_time(rng, rate)
            .expect("rates validated at construction")
    }

    /// Expected long-run fraction of time the trap is occupied.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        // Mean dwell occupied = 1/emission, empty = 1/capture.
        let occupied = 1.0 / self.emission_rate;
        let empty = 1.0 / self.capture_rate;
        occupied / (occupied + empty)
    }
}

/// A slow bounded random-walk drift of an island's offset charge,
/// representing the minutes-to-hours background-charge drift reported for
/// measured SETs.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftProcess {
    /// Standard deviation of the offset increment per √second, in `e/√s`.
    diffusion: f64,
    /// The offsets are wrapped into `[-bound, bound]` (offsets only matter
    /// modulo `e`, so a natural bound is 0.5).
    bound: f64,
    current: f64,
}

impl DriftProcess {
    /// Creates a drift process starting at offset zero.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if `diffusion` is negative
    /// or `bound` is not strictly positive.
    pub fn new(diffusion: f64, bound: f64) -> Result<Self, OrthodoxError> {
        if diffusion < 0.0 || !diffusion.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "diffusion must be non-negative and finite, got {diffusion}"
            )));
        }
        if !(bound > 0.0) {
            return Err(OrthodoxError::InvalidParameter(format!(
                "bound must be positive, got {bound}"
            )));
        }
        Ok(DriftProcess {
            diffusion,
            bound,
            current: 0.0,
        })
    }

    /// Current offset in units of `e`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.current
    }

    /// Advances the drift by `dt` seconds and returns the new offset.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) -> f64 {
        let sigma = self.diffusion * dt.max(0.0).sqrt();
        let step = se_numeric::sampling::normal(rng, 0.0, sigma)
            .expect("sigma is non-negative by construction");
        self.current += step;
        // Reflect at the bounds to keep the offset in range.
        while self.current > self.bound || self.current < -self.bound {
            if self.current > self.bound {
                self.current = 2.0 * self.bound - self.current;
            }
            if self.current < -self.bound {
                self.current = -2.0 * self.bound - self.current;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn static_offsets_constructors() {
        let zero = StaticOffsets::zero(3);
        assert_eq!(zero.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(zero.len(), 3);
        assert!(!zero.is_empty());

        let explicit = StaticOffsets::from_values(vec![0.1, -0.2]);
        assert_eq!(explicit.charge(1), -0.2);

        let mut rng = StdRng::seed_from_u64(1);
        let random = StaticOffsets::random_uniform(&mut rng, 100);
        assert!(random.as_slice().iter().all(|&q| (-0.5..0.5).contains(&q)));
    }

    #[test]
    fn telegraph_process_validates_rates() {
        assert!(RandomTelegraphProcess::new(0.1, 0.0, 1.0).is_err());
        assert!(RandomTelegraphProcess::new(0.1, 1.0, -1.0).is_err());
        assert!(RandomTelegraphProcess::new(0.1, 1.0, 1.0).is_ok());
    }

    #[test]
    fn telegraph_process_starts_empty_and_switches() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut trap = RandomTelegraphProcess::new(0.2, 1e3, 1e3).unwrap();
        assert_eq!(trap.offset(), 0.0);
        assert!(!trap.is_occupied());
        // Advance long enough that many switches must have happened.
        let mut saw_occupied = false;
        for _ in 0..100 {
            trap.advance(&mut rng, 1e-2);
            if trap.is_occupied() {
                saw_occupied = true;
            }
        }
        assert!(saw_occupied, "trap never switched in 100 long steps");
    }

    #[test]
    fn telegraph_duty_cycle_matches_rates() {
        let trap = RandomTelegraphProcess::new(0.1, 3.0, 1.0).unwrap();
        // Occupied dwell 1/1, empty dwell 1/3 → duty cycle 0.75.
        assert!((trap.duty_cycle() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn telegraph_long_run_occupation_matches_duty_cycle() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut trap = RandomTelegraphProcess::new(1.0, 200.0, 100.0).unwrap();
        let dt = 1e-3;
        let steps = 200_000;
        let mut occupied_time = 0.0;
        for _ in 0..steps {
            trap.advance(&mut rng, dt);
            if trap.is_occupied() {
                occupied_time += dt;
            }
        }
        let fraction = occupied_time / (steps as f64 * dt);
        assert!(
            (fraction - trap.duty_cycle()).abs() < 0.03,
            "fraction {fraction} vs duty cycle {}",
            trap.duty_cycle()
        );
    }

    #[test]
    fn drift_process_validates_parameters() {
        assert!(DriftProcess::new(-1.0, 0.5).is_err());
        assert!(DriftProcess::new(0.1, 0.0).is_err());
        assert!(DriftProcess::new(0.1, 0.5).is_ok());
    }

    #[test]
    fn drift_stays_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut drift = DriftProcess::new(0.5, 0.5).unwrap();
        for _ in 0..10_000 {
            let q = drift.advance(&mut rng, 0.1);
            assert!(q.abs() <= 0.5 + 1e-12, "offset {q} escaped the bound");
        }
    }

    #[test]
    fn zero_diffusion_drift_never_moves() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut drift = DriftProcess::new(0.0, 0.5).unwrap();
        for _ in 0..100 {
            assert_eq!(drift.advance(&mut rng, 1.0), 0.0);
        }
    }
}
