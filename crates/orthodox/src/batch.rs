//! Struct-of-arrays twin of the incremental hot path: N replicas of one
//! system, stepped in lockstep over endpoint-major potential planes.
//!
//! The Monte-Carlo method is embarrassingly ensemble-shaped — seed repeats,
//! stationary solves at one bias point, noise statistics — yet running N
//! independent [`LiveState`](crate::LiveState)/[`crate::RateContext`] walks makes
//! every replica re-load the same per-junction constants (endpoint indices,
//! prefactors, self-charging energies) once per event. This module packs the
//! per-replica state the other way round, so one warm pass over the junction
//! tables serves the whole batch:
//!
//! ```text
//! BatchedLiveState (N replicas, endpoint-major planes)
//!
//!   phi:        [ φ(island 0): r0 r1 … rN-1 | φ(island 1): r0 … | … | φ(ext 0): r0 … ]
//!   electrons:  [ n(island 0): r0 r1 … rN-1 | n(island 1): r0 … ]
//!   rates:      [ Γ(event 0):  r0 r1 … rN-1 | Γ(event 1):  r0 … ]   (event-major planes)
//!   totals:     [ Σ_e Γ_e  per replica ]
//! ```
//!
//! [`BatchedRateContext::fill_rates_batch`] walks the junctions once; for
//! each junction it loads the endpoint pair, prefactor and self-charging
//! energy a single time and evaluates the two directed rates for all N
//! replicas over the two contiguous potential planes. The frozen-event
//! cutoff and the strongly-favourable linear branch — which together cover
//! every event of a cold circuit — reduce to two compares and one multiply
//! per rate; only mid-regime (thermal-window) events fall back to the exact
//! shared kernel (`rate_from_parts` in [`crate::rates`]).
//!
//! Bit-identity contract: every floating-point operation applied to one
//! replica's lane — the potential axpys of [`BatchedLiveState::apply`] and
//! [`BatchedLiveState::sync_replica`], the per-junction rate evaluation and
//! the junction-order total accumulation, and the periodic exact refresh
//! after [`REFRESH_INTERVAL`] lane updates — is the *same operation in the
//! same order* as the scalar [`LiveState`](crate::LiveState) path. A batch lane is therefore
//! bit-for-bit identical to a standalone scalar walk of the same event
//! sequence, which is what lets the batched Monte-Carlo engine share seeds
//! (and tests, and goldens) with the single-replica simulator.

use crate::error::OrthodoxError;
use crate::live::{RateContext, REFRESH_INTERVAL};
use crate::rates::{rate_from_parts, rate_from_parts_branchfree, MAX_EXPONENT};
use crate::system::{ChargeState, Direction, Endpoint, TunnelEvent, TunnelSystem};
use se_units::constants::E;

/// N replicas of one system's charge state and cached island potentials,
/// packed as endpoint-major struct-of-arrays planes.
///
/// The batched sibling of [`LiveState`](crate::LiveState): replica `r`'s lane — the strided
/// elements `phi[e·N + r]`, `electrons[i·N + r]` — evolves through exactly
/// the scalar update algebra (one response-column axpy per event or drive
/// change, an exact recompute every [`REFRESH_INTERVAL`] lane updates), so
/// each lane stays bit-identical to a standalone `LiveState` fed the same
/// sequence of events and syncs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedLiveState {
    replicas: usize,
    islands: usize,
    externals: usize,
    /// Endpoint-major potential planes: `phi[e * replicas + r]`, islands
    /// first, then externals. The external planes double as each replica's
    /// record of the last drive values folded in (what `sync_replica`
    /// compares against), exactly like the scalar flat buffer's tail.
    phi: Vec<f64>,
    /// Island-major electron planes: `electrons[i * replicas + r]`, plus
    /// one trailing *spill plane* at index `islands`. The spill plane lets
    /// [`Self::apply_slotted`] update both event endpoints unconditionally
    /// — external endpoints are routed to the spill slot instead of being
    /// branched around, which keeps the batched hot loop free of the
    /// data-dependent branches a lockstep front cannot predict. Spill
    /// contents are garbage by design and never read back as physics.
    electrons: Vec<i64>,
    /// Island-major planes of the last-seen background charges.
    seen_backgrounds: Vec<f64>,
    /// Per-replica incremental-update counters driving the periodic exact
    /// refresh (the same deterministic schedule as the scalar path).
    updates_since_refresh: Vec<u32>,
    /// Per-replica monotone counters of non-event potential revisions —
    /// the lane-wise twin of the scalar `LiveState` generation: bumped by
    /// every exact lane refresh and every drive/background sync fold, so
    /// per-lane derived caches (the incremental event-rate tables) can
    /// detect that their lane was rebuilt under them.
    generations: Vec<u64>,
    /// Scratch charge state reused by per-replica refreshes.
    scratch: ChargeState,
    /// Per-event `[from_slot, to_slot]` decode table (see
    /// [`Self::endpoint_slot`]) for the branchless batched applies.
    event_slots: Vec<[usize; 2]>,
    /// Island-plane-major scratch (`islands × replicas`, the same layout as
    /// `phi`) holding each lane's signed response column during
    /// [`Self::apply_all`]. Pass one scatters the per-lane columns here with
    /// narrow stores; pass two then folds whole planes into `phi` with
    /// contiguous vector adds — see `apply_all` for why the split matters.
    apply_scratch: Vec<f64>,
}

impl BatchedLiveState {
    /// Creates a batch of `replicas` lanes, all starting from `state`, with
    /// the potentials computed exactly (the same construction as
    /// [`LiveState::new`](crate::LiveState::new) per lane).
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if `replicas == 0` or the
    /// state's island count does not match the system.
    pub fn new(
        system: &TunnelSystem,
        state: ChargeState,
        replicas: usize,
    ) -> Result<Self, OrthodoxError> {
        if replicas == 0 {
            return Err(OrthodoxError::InvalidParameter(
                "a batch needs at least one replica".into(),
            ));
        }
        let islands = system.island_count();
        if state.0.len() != islands {
            return Err(OrthodoxError::InvalidParameter(format!(
                "charge state has {} islands, system has {islands}",
                state.0.len()
            )));
        }
        let externals = system.external_count();
        let event_slots = (0..system.event_count())
            .map(|e| {
                let (from, to) = system.event_endpoints(system.event(e));
                let slot = |endpoint| match endpoint {
                    Endpoint::Island(i) => i,
                    Endpoint::External(_) => islands,
                };
                [slot(from), slot(to)]
            })
            .collect();
        let mut live = BatchedLiveState {
            replicas,
            islands,
            externals,
            phi: vec![0.0; (islands + externals) * replicas],
            // One extra spill plane (see the field docs) after the islands.
            electrons: vec![0; (islands + 1) * replicas],
            seen_backgrounds: vec![0.0; islands * replicas],
            updates_since_refresh: vec![0; replicas],
            generations: vec![0; replicas],
            scratch: state.clone(),
            event_slots,
            apply_scratch: vec![0.0; islands * replicas],
        };
        // All lanes start identical: compute the exact potentials once
        // (the very computation a scalar refresh performs) and broadcast.
        let potentials = system.island_potentials(&state);
        for (i, &n) in state.0.iter().enumerate() {
            live.electrons[i * replicas..(i + 1) * replicas].fill(n);
        }
        for (i, &p) in potentials.iter().enumerate() {
            live.phi[i * replicas..(i + 1) * replicas].fill(p);
        }
        for k in 0..externals {
            let plane = (islands + k) * replicas;
            live.phi[plane..plane + replicas].fill(system.external_voltage(k));
        }
        for i in 0..islands {
            let plane = i * replicas;
            live.seen_backgrounds[plane..plane + replicas].fill(system.background_charge(i));
        }
        Ok(live)
    }

    /// Number of replica lanes.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of islands per replica.
    #[must_use]
    pub fn islands(&self) -> usize {
        self.islands
    }

    /// The number of excess electrons on `island` in replica `r`.
    ///
    /// # Panics
    ///
    /// Panics if `island` or `r` is out of range.
    #[inline]
    #[must_use]
    pub fn electron_count(&self, island: usize, r: usize) -> i64 {
        assert!(island < self.islands, "island {island} out of range");
        assert!(r < self.replicas, "replica {r} out of range");
        self.electrons[island * self.replicas + r]
    }

    /// [`Self::electron_count`] addressed by *slot*: a slot is either an
    /// island index or the spill slot `islands()` that
    /// [`Self::apply_slotted`] routes external endpoints to. Reading the
    /// spill slot is allowed and returns its (meaningless) accumulator —
    /// callers that settle per-slot occupation unconditionally multiply it
    /// into the matching spill entry of their own planes and never report
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `slot > islands()` or `r` is out of range.
    #[inline]
    #[must_use]
    pub fn slot_electron_count(&self, slot: usize, r: usize) -> i64 {
        assert!(slot <= self.islands, "slot {slot} out of range");
        assert!(r < self.replicas, "replica {r} out of range");
        self.electrons[slot * self.replicas + r]
    }

    /// Materializes replica `r`'s charge state (a strided gather — meant
    /// for observation, not the hot loop).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn charge_state(&self, r: usize) -> ChargeState {
        assert!(r < self.replicas, "replica {r} out of range");
        ChargeState(
            (0..self.islands)
                .map(|i| self.electrons[i * self.replicas + r])
                .collect(),
        )
    }

    /// Materializes replica `r`'s cached island potentials in volt.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn potentials(&self, r: usize) -> Vec<f64> {
        assert!(r < self.replicas, "replica {r} out of range");
        (0..self.islands)
            .map(|i| self.phi[i * self.replicas + r])
            .collect()
    }

    /// The full endpoint-major potential planes (for the batched rate fill).
    pub(crate) fn endpoint_planes(&self) -> &[f64] {
        &self.phi
    }

    /// Lane `r`'s non-event revision counter (see the `generations` field).
    pub(crate) fn generation(&self, r: usize) -> u64 {
        self.generations[r]
    }

    /// Recomputes replica `r`'s potentials exactly from the system and
    /// resets its drift counter — the per-lane twin of
    /// [`LiveState::refresh`](crate::LiveState::refresh).
    pub fn refresh_replica(&mut self, system: &TunnelSystem, r: usize) {
        let replicas = self.replicas;
        for i in 0..self.islands {
            self.scratch.0[i] = self.electrons[i * replicas + r];
        }
        let potentials = system.island_potentials(&self.scratch);
        for (i, &p) in potentials.iter().enumerate() {
            self.phi[i * replicas + r] = p;
        }
        for k in 0..self.externals {
            self.phi[(self.islands + k) * replicas + r] = system.external_voltage(k);
        }
        for i in 0..self.islands {
            self.seen_backgrounds[i * replicas + r] = system.background_charge(i);
        }
        self.updates_since_refresh[r] = 0;
        self.generations[r] = self.generations[r].wrapping_add(1);
    }

    /// Folds any drive-voltage or background-charge changes made to the
    /// system since replica `r` last synced into its lane — one axpy of the
    /// precomputed response column per changed value, exactly the scalar
    /// [`LiveState::sync`](crate::LiveState::sync) comparison pass on lane `r`.
    pub fn sync_replica(&mut self, system: &TunnelSystem, r: usize) {
        let replicas = self.replicas;
        for k in 0..self.externals {
            let v = system.external_voltage(k);
            let seen = self.phi[(self.islands + k) * replicas + r];
            if v != seen {
                let dv = v - seen;
                let column = system.drive_response(k);
                for (i, &c) in column.iter().enumerate() {
                    self.phi[i * replicas + r] += dv * c;
                }
                self.phi[(self.islands + k) * replicas + r] = v;
                self.generations[r] = self.generations[r].wrapping_add(1);
                self.count_update(system, r);
            }
        }
        for i in 0..self.islands {
            let q0 = system.background_charge(i);
            let seen = self.seen_backgrounds[i * replicas + r];
            if q0 != seen {
                // q_i = −e·n_i + e·q0_i, so Δq0 adds e·Δq0 of island charge.
                let dq = E * (q0 - seen);
                let column = system.inverse_row(i);
                for (ii, &c) in column.iter().enumerate() {
                    self.phi[ii * replicas + r] += dq * c;
                }
                self.seen_backgrounds[i * replicas + r] = q0;
                self.generations[r] = self.generations[r].wrapping_add(1);
                self.count_update(system, r);
            }
        }
    }

    /// Applies a tunnel event to replica `r`: one electron moves and the
    /// lane's potentials are corrected with a single axpy of the junction's
    /// precomputed event-response column — the scalar [`LiveState::apply`](crate::LiveState::apply)
    /// on lane `r`.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index or `r` is out of range.
    #[inline]
    pub fn apply(&mut self, system: &TunnelSystem, event: TunnelEvent, r: usize) {
        let (from, to) = system.event_endpoints(event);
        let sign = match event.direction {
            Direction::AToB => 1.0,
            Direction::BToA => -1.0,
        };
        self.apply_slotted(
            system,
            event.junction,
            sign,
            self.endpoint_slot(from),
            self.endpoint_slot(to),
            r,
        );
    }

    /// The slot (electron-plane index) an endpoint maps to: the island
    /// index for an island, the spill slot `islands()` for an external —
    /// the addressing scheme of [`Self::apply_slotted`].
    #[inline]
    #[must_use]
    pub fn endpoint_slot(&self, endpoint: Endpoint) -> usize {
        match endpoint {
            Endpoint::Island(i) => i,
            Endpoint::External(_) => self.islands,
        }
    }

    /// [`Self::apply`] with the event pre-decoded into its branchless form:
    /// junction index, direction sign (`+1.0` for a→b, `-1.0` for b→a) and
    /// the two endpoint slots (see [`Self::endpoint_slot`]). Both electron
    /// updates execute unconditionally — external endpoints land in the
    /// spill plane — so a lockstep caller pays no data-dependent branch per
    /// event. Island lanes see the exact scalar arithmetic; bit-identity is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if a slot, the junction index or `r` is out of range.
    #[inline]
    pub fn apply_slotted(
        &mut self,
        system: &TunnelSystem,
        junction: usize,
        sign: f64,
        from_slot: usize,
        to_slot: usize,
        r: usize,
    ) {
        let replicas = self.replicas;
        assert!(r < replicas, "replica {r} out of range");
        assert!(from_slot <= self.islands, "from slot out of range");
        assert!(to_slot <= self.islands, "to slot out of range");
        self.electrons[from_slot * replicas + r] -= 1;
        self.electrons[to_slot * replicas + r] += 1;
        let column = system.junction_response(junction);
        // `chunks_exact_mut` walks the endpoint planes with the single
        // bounds check above instead of one per plane.
        for (plane, &c) in self.phi.chunks_exact_mut(replicas).zip(column.iter()) {
            plane[r] += sign * c;
        }
        self.count_update(system, r);
    }

    /// Applies one chosen event **per lane** — `chosen[r]` is the canonical
    /// event index lane `r` executes — in a store-width-aware two-pass
    /// sweep. This is the lockstep engine's apply: per lane it performs
    /// exactly the [`Self::apply`] arithmetic (same electron moves, same
    /// response-column axpy, same refresh schedule), so bit-identity with
    /// the scalar path is untouched.
    ///
    /// Why not just call [`Self::apply`] per lane? Each lane's axpy scatters
    /// narrow stores across the endpoint planes, and the very next batched
    /// rate fill reads those planes with full-width vector loads — loads
    /// that overlap several pending narrow stores cannot be
    /// store-forwarded and stall until the stores retire, which measures
    /// as ~4× the cost of the apply arithmetic itself. So pass one
    /// scatters each lane's signed column into a plane-major scratch (the
    /// narrow stores land *there*), and pass two folds the scratch into
    /// the potentials plane-by-plane as a contiguous vectorized
    /// read-modify-write — the planes only ever see full-width stores, so
    /// the fill's full-width loads always forward.
    ///
    /// # Panics
    ///
    /// Panics if `chosen.len() != replicas()` or an event index is out of
    /// range.
    pub fn apply_all(&mut self, system: &TunnelSystem, chosen: &[usize]) {
        let replicas = self.replicas;
        let islands = self.islands;
        assert_eq!(chosen.len(), replicas, "one chosen event per lane");
        // Pass 1: per lane — move the electron (the spill plane absorbs
        // external endpoints) and scatter sign · column into the lane's
        // strided scratch slots.
        for (r, &e) in chosen.iter().enumerate() {
            let [from, to] = self.event_slots[e];
            self.electrons[from * replicas + r] -= 1;
            self.electrons[to * replicas + r] += 1;
            let sign = if e & 1 == 0 { 1.0 } else { -1.0 };
            let column = system.junction_response(e >> 1);
            for (i, &c) in column.iter().enumerate() {
                self.apply_scratch[i * replicas + r] = sign * c;
            }
        }
        // The drift counters tick between the scratch scatter and the
        // scratch reload below, giving the scattered stores time to drain.
        // Any lane that hits the refresh interval resyncs *after* pass 2 —
        // the scalar order (axpy, then refresh) — so the exact recompute is
        // never clobbered by the pending scratch fold.
        let mut refresh_due = false;
        for ticks in &mut self.updates_since_refresh {
            *ticks += 1;
            refresh_due |= *ticks >= REFRESH_INTERVAL;
        }
        // Pass 2: plane-major accumulate — wide scratch loads, one wide
        // read-modify-write per island plane.
        let scratch = self.apply_scratch[..islands * replicas].chunks_exact(replicas);
        for (plane, adds) in self.phi.chunks_exact_mut(replicas).zip(scratch) {
            for (p, &a) in plane.iter_mut().zip(adds.iter()) {
                *p += a;
            }
        }
        if refresh_due {
            for r in 0..replicas {
                if self.updates_since_refresh[r] >= REFRESH_INTERVAL {
                    self.refresh_replica(system, r);
                }
            }
        }
    }

    fn count_update(&mut self, system: &TunnelSystem, r: usize) {
        self.updates_since_refresh[r] += 1;
        if self.updates_since_refresh[r] >= REFRESH_INTERVAL {
            self.refresh_replica(system, r);
        }
    }
}

/// The batched rate evaluator: one [`RateContext`] shared by N replica
/// lanes, filling an `n_events × n_replicas` rate matrix (event-major
/// planes) in a single junction-major pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedRateContext {
    ctx: RateContext,
    replicas: usize,
    /// Per-junction prediction: did this junction need the exact thermal
    /// kernel on the previous [`Self::fill_rates_batch`]? Junctions whose
    /// ΔF sits inside the thermal window tend to stay there for many
    /// events, so a warm junction skips the fast linear pass and runs the
    /// (bitwise-equivalent) branch-free exact kernel directly — one lane
    /// loop per junction instead of two. Purely a performance hint: both
    /// code paths produce identical bits, so a stale prediction costs a
    /// few cycles, never correctness. Interior mutability keeps the fill
    /// entry points `&self` for the engine's borrow patterns.
    warm: std::cell::RefCell<Vec<bool>>,
}

impl BatchedRateContext {
    /// Builds the shared rate table for a system at the given temperature.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] for `replicas == 0` or an
    /// invalid temperature (see [`RateContext::new`]).
    pub fn new(
        system: &TunnelSystem,
        temperature: f64,
        replicas: usize,
    ) -> Result<Self, OrthodoxError> {
        if replicas == 0 {
            return Err(OrthodoxError::InvalidParameter(
                "a batch needs at least one replica".into(),
            ));
        }
        Ok(BatchedRateContext {
            ctx: RateContext::new(system, temperature)?,
            replicas,
            warm: std::cell::RefCell::new(vec![false; system.junctions().len()]),
        })
    }

    /// The shared scalar rate table.
    #[must_use]
    pub fn context(&self) -> &RateContext {
        &self.ctx
    }

    /// Number of replica lanes the fill serves.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Evaluates the rate of every candidate event for **all** replicas in
    /// one junction-major pass. `rates` is resized to
    /// `event_count × replicas`, laid out as event-major planes
    /// (`rates[e·N + r]` is event `e`'s rate in replica `r`, events in the
    /// canonical [`TunnelSystem::event`] order); `totals` is resized to one
    /// total rate per replica, accumulated junction-by-junction in exactly
    /// the scalar [`RateContext::fill_rates`] order.
    ///
    /// # Panics
    ///
    /// Panics if `live` was built for a different replica count.
    pub fn fill_rates_batch(
        &self,
        system: &TunnelSystem,
        live: &BatchedLiveState,
        rates: &mut Vec<f64>,
        totals: &mut Vec<f64>,
    ) {
        let replicas = self.replicas;
        assert_eq!(live.replicas(), replicas, "replica counts must match");
        debug_assert_eq!(self.ctx.endpoints().len(), system.junctions().len());
        let phi = live.endpoint_planes();
        let endpoints = self.ctx.endpoints();
        rates.resize(2 * endpoints.len() * replicas, 0.0);
        totals.clear();
        totals.resize(replicas, 0.0);
        let kt = self.ctx.kt();
        let inv_kt = self.ctx.inv_kt();
        let cutoff = self.ctx.frozen_cutoff();
        // A ΔF needs the exact thermal kernel when `ΔF · inv_kt` stays
        // above `-MAX_EXPONENT` — i.e. `ΔF ≥ -MAX_EXPONENT · kt` for
        // positive kt, and *always* at kt = 0 (where `inv_kt` is zero and
        // the product degenerates to 0). Folding that into a precomputed
        // lower bound trades the per-rate multiply for one compare.
        let patch_floor = if inv_kt > 0.0 {
            -MAX_EXPONENT * kt
        } else {
            f64::NEG_INFINITY
        };
        let mut warm = self.warm.borrow_mut();
        warm.resize(endpoints.len(), false);
        for (j, &(ia, ib)) in endpoints.iter().enumerate() {
            let prefactor = self.ctx.prefactors()[j];
            let self_energy = self.ctx.self_energies()[j];
            let plane_a = &phi[ia * replicas..(ia + 1) * replicas];
            let plane_b = &phi[ib * replicas..(ib + 1) * replicas];
            let (out_ab, rest) = rates[2 * j * replicas..].split_at_mut(replicas);
            let out_ba = &mut rest[..replicas];
            if warm[j] && inv_kt > 0.0 {
                // Predicted warm: this junction needed the exact thermal
                // kernel last fill, and ΔF drifts slowly, so skip the fast
                // linear pass entirely — one branch-free exact loop per
                // junction instead of two. The exact kernel is bitwise
                // equal to the fast pass outside the window, so running it
                // unconditionally cannot change any value; while here,
                // recompute the window flag to steer the next fill.
                let mut still_warm = false;
                let lanes = plane_a
                    .iter()
                    .zip(plane_b.iter())
                    .zip(out_ab.iter_mut())
                    .zip(out_ba.iter_mut());
                for (((&pa, &pb), ab), ba) in lanes {
                    let phi_gap = E * (pa - pb);
                    let df_ab = phi_gap + self_energy;
                    let df_ba = self_energy - phi_gap;
                    *ab = rate_from_parts_branchfree(df_ab, prefactor, kt, inv_kt);
                    *ba = rate_from_parts_branchfree(df_ba, prefactor, kt, inv_kt);
                    still_warm |= (df_ab <= cutoff) & (df_ab >= patch_floor);
                    still_warm |= (df_ba <= cutoff) & (df_ba >= patch_floor);
                }
                warm[j] = still_warm;
            } else {
                self.fill_junction_cold(
                    j,
                    &mut warm,
                    plane_a,
                    plane_b,
                    out_ab,
                    out_ba,
                    patch_floor,
                );
            }
            // Totals fold in junction-by-junction — exactly the scalar
            // [`RateContext::fill_rates`] accumulation order, so each
            // lane's total is bitwise the scalar walk's total. Folding here,
            // while the junction's freshly written planes still sit in L1,
            // replaces a whole streaming re-read of `rates` at the end.
            for ((total, &a), &b) in totals.iter_mut().zip(out_ab.iter()).zip(out_ba.iter()) {
                *total += a + b;
            }
        }
    }

    /// The cold-junction half of [`Self::fill_rates_batch`]: fast linear
    /// pass plus (rare) exact patch pass for one junction's lanes, updating
    /// the junction's warm prediction for the next fill.
    #[allow(clippy::too_many_arguments)]
    fn fill_junction_cold(
        &self,
        j: usize,
        warm: &mut [bool],
        plane_a: &[f64],
        plane_b: &[f64],
        out_ab: &mut [f64],
        out_ba: &mut [f64],
        patch_floor: f64,
    ) {
        let kt = self.ctx.kt();
        let inv_kt = self.ctx.inv_kt();
        let cutoff = self.ctx.frozen_cutoff();
        let prefactor = self.ctx.prefactors()[j];
        let self_energy = self.ctx.self_energies()[j];
        {
            // Fast pass, branch-free so it vectorizes across lanes: frozen
            // events pin to zero, everything else takes the strongly-
            // favourable linear rate — bitwise the values the exact kernel
            // produces outside the thermal window. A lane-wide flag records
            // whether any directed ΔF lands *inside* the window; only then
            // does the (rare on a cold circuit) exact pass overwrite this
            // junction's lanes with the shared scalar kernel.
            let mut needs_patch = false;
            let lanes = plane_a
                .iter()
                .zip(plane_b.iter())
                .zip(out_ab.iter_mut())
                .zip(out_ba.iter_mut());
            for (((&pa, &pb), ab), ba) in lanes {
                let phi_gap = E * (pa - pb);
                let df_ab = phi_gap + self_energy;
                let df_ba = self_energy - phi_gap;
                *ab = if df_ab > cutoff {
                    0.0
                } else {
                    -df_ab * prefactor
                };
                *ba = if df_ba > cutoff {
                    0.0
                } else {
                    -df_ba * prefactor
                };
                needs_patch |= (df_ab <= cutoff) & (df_ab >= patch_floor);
                needs_patch |= (df_ba <= cutoff) & (df_ba >= patch_floor);
            }
            warm[j] = needs_patch;
            if needs_patch {
                let lanes = plane_a
                    .iter()
                    .zip(plane_b.iter())
                    .zip(out_ab.iter_mut())
                    .zip(out_ba.iter_mut());
                if inv_kt > 0.0 {
                    // Warm circuit: the full thermal kernel, in its
                    // branch-free form so the exact pass vectorizes across
                    // lanes just like the fast pass (this is where warm
                    // workloads spend their fill time).
                    for (((&pa, &pb), ab), ba) in lanes {
                        let phi_gap = E * (pa - pb);
                        *ab = rate_from_parts_branchfree(
                            phi_gap + self_energy,
                            prefactor,
                            kt,
                            inv_kt,
                        );
                        *ba = rate_from_parts_branchfree(
                            self_energy - phi_gap,
                            prefactor,
                            kt,
                            inv_kt,
                        );
                    }
                } else {
                    for (((&pa, &pb), ab), ba) in lanes {
                        let (rate_ab, rate_ba) = directed_rates(
                            E * (pa - pb),
                            self_energy,
                            prefactor,
                            kt,
                            inv_kt,
                            cutoff,
                        );
                        *ab = rate_ab;
                        *ba = rate_ba;
                    }
                }
            }
        }
    }

    /// [`Self::fill_rates_batch`] restricted to a subset of replica lanes —
    /// used once a batch front has retired replicas, so finished lanes cost
    /// nothing. Only the listed replicas' rate lanes and totals are
    /// (re)written; `rates`/`totals` must already have the full batch shape
    /// (call [`Self::fill_rates_batch`] first or size them identically).
    ///
    /// # Panics
    ///
    /// Panics if a subset index is out of range or the buffers have the
    /// wrong shape.
    pub fn fill_rates_subset(
        &self,
        system: &TunnelSystem,
        live: &BatchedLiveState,
        rates: &mut [f64],
        totals: &mut [f64],
        subset: &[usize],
    ) {
        let replicas = self.replicas;
        assert_eq!(live.replicas(), replicas, "replica counts must match");
        let endpoints = self.ctx.endpoints();
        assert_eq!(rates.len(), 2 * endpoints.len() * replicas);
        assert_eq!(totals.len(), replicas);
        debug_assert_eq!(endpoints.len(), system.junctions().len());
        let phi = live.endpoint_planes();
        let kt = self.ctx.kt();
        let inv_kt = self.ctx.inv_kt();
        let cutoff = self.ctx.frozen_cutoff();
        for &r in subset {
            totals[r] = 0.0;
        }
        for (j, &(ia, ib)) in endpoints.iter().enumerate() {
            let prefactor = self.ctx.prefactors()[j];
            let self_energy = self.ctx.self_energies()[j];
            let plane_a = &phi[ia * replicas..(ia + 1) * replicas];
            let plane_b = &phi[ib * replicas..(ib + 1) * replicas];
            let (out_ab, rest) = rates[2 * j * replicas..].split_at_mut(replicas);
            let out_ba = &mut rest[..replicas];
            for &r in subset {
                let (rate_ab, rate_ba) = directed_rates(
                    E * (plane_a[r] - plane_b[r]),
                    self_energy,
                    prefactor,
                    kt,
                    inv_kt,
                    cutoff,
                );
                out_ab[r] = rate_ab;
                out_ba[r] = rate_ba;
                totals[r] += rate_ab + rate_ba;
            }
        }
    }
}

/// Both directed rates of one junction given the potential gap — the
/// branch-light core of the batched fill.
///
/// The fast path covers the two regimes that dominate a cold circuit with
/// one compare and one multiply each: frozen events (`ΔF` above the
/// Boltzmann-overflow cutoff → exact zero) and strongly-favourable events
/// (`ΔF/kT < −MAX_EXPONENT` → the linear rate `−ΔF/(e²R)`). Only events in
/// the thermal mid-regime — including the `ΔF → 0` series window, and
/// everything at `kT = 0` where `inv_kt == 0` voids the regime test — are
/// patched with the exact shared kernel [`rate_from_parts`], so every
/// returned value is bit-identical to the scalar
/// [`RateContext::fill_rates`] path.
#[inline]
fn directed_rates(
    phi_gap: f64,
    self_energy: f64,
    prefactor: f64,
    kt: f64,
    inv_kt: f64,
    cutoff: f64,
) -> (f64, f64) {
    let df_ab = phi_gap + self_energy;
    let df_ba = self_energy - phi_gap;
    let mut rate_ab = if df_ab > cutoff {
        0.0
    } else {
        -df_ab * prefactor
    };
    let mut rate_ba = if df_ba > cutoff {
        0.0
    } else {
        -df_ba * prefactor
    };
    if df_ab <= cutoff && df_ab * inv_kt >= -MAX_EXPONENT {
        rate_ab = rate_from_parts(df_ab, prefactor, kt, inv_kt);
    }
    if df_ba <= cutoff && df_ba * inv_kt >= -MAX_EXPONENT {
        rate_ba = rate_from_parts(df_ba, prefactor, kt, inv_kt);
    }
    (rate_ab, rate_ba)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveState;
    use crate::system::TunnelSystemBuilder;

    /// Two-island chain with a gate (the `live` module's test circuit).
    fn chain(vd: f64, vg: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let i0 = b.island("i0", 0.0);
        let i1 = b.island("i1", 0.1);
        let drain = b.external("drain", vd);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("J0", drain, i0, 0.7e-18, 80e3);
        b.junction("J1", i0, i1, 0.4e-18, 120e3);
        b.junction("J2", i1, source, 0.6e-18, 90e3);
        b.capacitor("Cg0", gate, i0, 0.3e-18);
        b.capacitor("Cg1", gate, i1, 0.5e-18);
        b.build().unwrap()
    }

    /// A deterministic per-replica event walk: replica `r` draws its own
    /// pseudo-random event sequence.
    fn walk_event(x: &mut u64, system: &TunnelSystem) -> TunnelEvent {
        *x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        system.event((*x >> 33) as usize % system.event_count())
    }

    /// Drives `replicas` batch lanes and `replicas` scalar `LiveState`s
    /// through identical per-replica event walks and asserts bitwise
    /// identical potentials and rates at every checkpoint.
    fn assert_lockstep_bit_identity(temperature: f64, steps: usize, replicas: usize) {
        let system = chain(2e-3, 0.05);
        let mut batch = BatchedLiveState::new(&system, ChargeState::neutral(2), replicas).unwrap();
        let batch_ctx = BatchedRateContext::new(&system, temperature, replicas).unwrap();
        let scalar_ctx = RateContext::new(&system, temperature).unwrap();
        let mut scalars: Vec<LiveState> = (0..replicas)
            .map(|_| LiveState::new(&system, ChargeState::neutral(2)))
            .collect();
        let mut walks: Vec<u64> = (0..replicas).map(|r| 9 + 1000 * r as u64).collect();
        let mut batch_rates = Vec::new();
        let mut batch_totals = Vec::new();
        let mut scalar_rates = Vec::new();
        for step in 0..steps {
            for (r, scalar) in scalars.iter_mut().enumerate() {
                let event = walk_event(&mut walks[r], &system);
                batch.apply(&system, event, r);
                scalar.apply(&system, event);
            }
            if step % 16 == 0 || step + 1 == steps {
                batch_ctx.fill_rates_batch(&system, &batch, &mut batch_rates, &mut batch_totals);
                for (r, scalar) in scalars.iter().enumerate() {
                    let total = scalar_ctx.fill_rates(&system, scalar, &mut scalar_rates);
                    assert_eq!(
                        batch.potentials(r),
                        scalar.potentials(),
                        "replica {r} potentials diverged at step {step}"
                    );
                    assert_eq!(batch.charge_state(r), *scalar.state());
                    for (e, &expected) in scalar_rates.iter().enumerate() {
                        assert_eq!(
                            batch_rates[e * replicas + r].to_bits(),
                            expected.to_bits(),
                            "replica {r} event {e} rate diverged at step {step}"
                        );
                    }
                    assert_eq!(
                        batch_totals[r].to_bits(),
                        total.to_bits(),
                        "replica {r} total diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_track_scalar_live_states_bit_for_bit() {
        // Cold (fast-path), warm (mid-regime patch) and zero temperature.
        assert_lockstep_bit_identity(0.1, 200, 5);
        assert_lockstep_bit_identity(4.2, 200, 3);
        assert_lockstep_bit_identity(0.0, 50, 2);
    }

    #[test]
    fn periodic_refresh_matches_the_scalar_schedule() {
        let system = chain(1e-3, 0.02);
        let mut batch = BatchedLiveState::new(&system, ChargeState::neutral(2), 2).unwrap();
        let mut scalar = LiveState::new(&system, ChargeState::neutral(2));
        let onto = TunnelEvent {
            junction: 0,
            direction: Direction::AToB,
        };
        // Walk replica 0 far past the refresh interval while replica 1
        // idles; only lane 0 must have refreshed.
        for _ in 0..(REFRESH_INTERVAL + 10) {
            batch.apply(&system, onto, 0);
            batch.apply(&system, onto.reversed(), 0);
            scalar.apply(&system, onto);
            scalar.apply(&system, onto.reversed());
        }
        assert_eq!(batch.potentials(0), scalar.potentials());
        let expected = 2 * (REFRESH_INTERVAL + 10) % REFRESH_INTERVAL;
        assert_eq!(batch.updates_since_refresh[0], expected);
        assert_eq!(batch.updates_since_refresh[1], 0);
        let exact = system.island_potentials(&batch.charge_state(1));
        assert_eq!(batch.potentials(1), exact, "idle lane holds exact values");
    }

    #[test]
    fn sync_replica_matches_scalar_sync() {
        let mut system = chain(0.0, 0.0);
        let mut batch = BatchedLiveState::new(&system, ChargeState(vec![1, -2]), 3).unwrap();
        let mut scalar = LiveState::new(&system, ChargeState(vec![1, -2]));
        system.set_external_voltage(0, 4e-3).unwrap();
        system.set_external_voltage(2, -0.07).unwrap();
        system.set_background_charge(1, 0.35).unwrap();
        scalar.sync(&system);
        // Sync lanes 0 and 2, leave lane 1 stale.
        batch.sync_replica(&system, 0);
        batch.sync_replica(&system, 2);
        assert_eq!(batch.potentials(0), scalar.potentials());
        assert_eq!(batch.potentials(2), scalar.potentials());
        assert_ne!(batch.potentials(1), scalar.potentials());
        // A second sync of a clean lane is a no-op.
        let before = batch.clone();
        batch.sync_replica(&system, 0);
        assert_eq!(before, batch);
    }

    #[test]
    fn subset_fill_matches_the_full_fill() {
        let system = chain(2e-3, 0.05);
        let replicas = 4;
        let mut batch = BatchedLiveState::new(&system, ChargeState::neutral(2), replicas).unwrap();
        let ctx = BatchedRateContext::new(&system, 0.5, replicas).unwrap();
        let mut walks: Vec<u64> = (0..replicas).map(|r| 77 + r as u64).collect();
        for _ in 0..50 {
            for (r, walk) in walks.iter_mut().enumerate() {
                let event = walk_event(walk, &system);
                batch.apply(&system, event, r);
            }
        }
        let mut full_rates = Vec::new();
        let mut full_totals = Vec::new();
        ctx.fill_rates_batch(&system, &batch, &mut full_rates, &mut full_totals);
        let mut sub_rates = vec![f64::NAN; full_rates.len()];
        let mut sub_totals = vec![f64::NAN; full_totals.len()];
        let subset = [0, 2, 3];
        ctx.fill_rates_subset(&system, &batch, &mut sub_rates, &mut sub_totals, &subset);
        for &r in &subset {
            assert_eq!(sub_totals[r].to_bits(), full_totals[r].to_bits());
            for e in 0..system.event_count() {
                assert_eq!(
                    sub_rates[e * replicas + r].to_bits(),
                    full_rates[e * replicas + r].to_bits()
                );
            }
        }
        assert!(sub_totals[1].is_nan(), "unlisted lane untouched");
    }

    #[test]
    fn rejects_empty_batches_and_mismatched_states() {
        let system = chain(0.0, 0.0);
        assert!(BatchedLiveState::new(&system, ChargeState::neutral(2), 0).is_err());
        assert!(BatchedLiveState::new(&system, ChargeState::neutral(3), 4).is_err());
        assert!(BatchedRateContext::new(&system, 1.0, 0).is_err());
        assert!(BatchedRateContext::new(&system, -1.0, 4).is_err());
    }
}
