//! Second-order (inelastic cotunneling) rate estimate.
//!
//! Sequential (orthodox, first-order) tunnelling predicts an exponentially
//! small current deep inside the Coulomb-blockade region. In reality a
//! *cotunneling* process — two electrons tunnelling coherently through the
//! two junctions of a SET via a virtual intermediate state — leaks current
//! through the blockade with only a power-law suppression. The paper lists
//! "higher-order tunnelling effects" among the physics that SPICE-level SET
//! models miss and dedicated Monte-Carlo simulators must capture; this
//! module provides the standard Averin–Nazarov-style estimate used for that
//! comparison (experiment E11).
//!
//! The inelastic cotunneling rate through a double junction with tunnel
//! resistances `R₁`, `R₂`, virtual-state energies `E₁`, `E₂` (the costs of
//! the forbidden intermediate states) and total free-energy gain `−ΔF` is
//! approximated by
//!
//! ```text
//! Γ_cot = (ħ / (12π e⁴ R₁R₂)) · (1/E₁ + 1/E₂)² · [(ΔF)² + (2π k_B T)²]
//!         · ΔF_gain / (1 − exp(ΔF / k_B T))
//! ```
//!
//! where the last factor reduces to `−ΔF` at low temperature. The formula is
//! an estimate (it ignores the energy dependence of the virtual state during
//! the sweep), which is exactly the fidelity needed to show *when* sequential
//! simulation is insufficient.

use crate::error::OrthodoxError;
use se_units::constants::{BOLTZMANN, E, REDUCED_PLANCK};

/// Parameters of a cotunneling path through two junctions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CotunnelingPath {
    /// Tunnel resistance of the first junction in ohm.
    pub resistance_1: f64,
    /// Tunnel resistance of the second junction in ohm.
    pub resistance_2: f64,
    /// Energy cost (joule) of the virtual intermediate state reached through
    /// the first junction. Must be positive (otherwise sequential tunnelling
    /// is already allowed and dominates).
    pub intermediate_energy_1: f64,
    /// Energy cost (joule) of the virtual intermediate state reached through
    /// the second junction. Must be positive.
    pub intermediate_energy_2: f64,
}

/// Inelastic cotunneling rate (events per second) for a total free-energy
/// change `delta_f` (joule) at `temperature` (kelvin).
///
/// # Errors
///
/// Returns [`OrthodoxError::InvalidParameter`] for non-positive resistances
/// or intermediate energies, negative temperature, or non-finite `delta_f`.
pub fn cotunneling_rate(
    path: &CotunnelingPath,
    delta_f: f64,
    temperature: f64,
) -> Result<f64, OrthodoxError> {
    if path.resistance_1 <= 0.0 || path.resistance_2 <= 0.0 {
        return Err(OrthodoxError::InvalidParameter(
            "cotunneling junction resistances must be positive".into(),
        ));
    }
    if path.intermediate_energy_1 <= 0.0 || path.intermediate_energy_2 <= 0.0 {
        return Err(OrthodoxError::InvalidParameter(
            "cotunneling intermediate-state energies must be positive".into(),
        ));
    }
    if temperature < 0.0 || !temperature.is_finite() {
        return Err(OrthodoxError::InvalidParameter(format!(
            "temperature must be non-negative and finite, got {temperature}"
        )));
    }
    if !delta_f.is_finite() {
        return Err(OrthodoxError::InvalidParameter(format!(
            "free-energy change must be finite, got {delta_f}"
        )));
    }

    let prefactor = REDUCED_PLANCK
        / (12.0 * std::f64::consts::PI * E.powi(4) * path.resistance_1 * path.resistance_2);
    let virtual_factor =
        (1.0 / path.intermediate_energy_1 + 1.0 / path.intermediate_energy_2).powi(2);
    let kt = BOLTZMANN * temperature;
    let thermal_broadening = delta_f * delta_f + (2.0 * std::f64::consts::PI * kt).powi(2);

    // Occupation factor with the same limits as the sequential rate.
    let occupation = if temperature == 0.0 {
        if delta_f < 0.0 {
            -delta_f
        } else {
            0.0
        }
    } else {
        let x = delta_f / kt;
        if x.abs() < 1e-9 {
            kt
        } else if x > 500.0 {
            0.0
        } else if x < -500.0 {
            -delta_f
        } else {
            -delta_f / (1.0 - x.exp())
        }
    };

    Ok((prefactor * virtual_factor * thermal_broadening * occupation).max(0.0))
}

/// Ratio of the cotunneling current to the sequential current deep inside
/// the blockade, for a symmetric SET with junction resistance `resistance`
/// and charging energy `charging_energy`, at bias `bias_energy = e·V` and
/// temperature `temperature`.
///
/// This is the figure of merit used in experiment E11: cotunneling scales as
/// `(R_Q/R_t)²` relative to the (exponentially small) sequential leakage, so
/// low-resistance junctions leak much more than orthodox-only simulation
/// predicts.
///
/// # Errors
///
/// Propagates the parameter validation of [`cotunneling_rate`] and
/// [`crate::rates::tunnel_rate`].
pub fn blockade_leakage_ratio(
    resistance: f64,
    charging_energy: f64,
    bias_energy: f64,
    temperature: f64,
) -> Result<f64, OrthodoxError> {
    if charging_energy <= 0.0 {
        return Err(OrthodoxError::InvalidParameter(
            "charging energy must be positive".into(),
        ));
    }
    let path = CotunnelingPath {
        resistance_1: resistance,
        resistance_2: resistance,
        intermediate_energy_1: charging_energy,
        intermediate_energy_2: charging_energy,
    };
    let delta_f = -bias_energy; // energy gained by transferring one electron across the bias
    let cot = cotunneling_rate(&path, delta_f, temperature)?;
    // Sequential leakage: the uphill event into the blockaded intermediate
    // state (cost ≈ charging energy − bias/2).
    let sequential_df = charging_energy - bias_energy / 2.0;
    let seq = crate::rates::tunnel_rate(sequential_df, resistance, temperature)?;
    if seq == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(cot / seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_units::constants::RESISTANCE_QUANTUM;

    fn path(r: f64, ec: f64) -> CotunnelingPath {
        CotunnelingPath {
            resistance_1: r,
            resistance_2: r,
            intermediate_energy_1: ec,
            intermediate_energy_2: ec,
        }
    }

    const EC: f64 = 5e-21; // ~31 meV

    #[test]
    fn rejects_invalid_parameters() {
        let p = path(1e5, EC);
        assert!(cotunneling_rate(&path(0.0, EC), -1e-22, 1.0).is_err());
        assert!(cotunneling_rate(&path(1e5, -EC), -1e-22, 1.0).is_err());
        assert!(cotunneling_rate(&p, -1e-22, -1.0).is_err());
        assert!(cotunneling_rate(&p, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn favourable_cotunneling_has_positive_rate() {
        let rate = cotunneling_rate(&path(1e5, EC), -1e-22, 0.1).unwrap();
        assert!(rate > 0.0);
    }

    #[test]
    fn unfavourable_cotunneling_is_suppressed_at_zero_temperature() {
        let rate = cotunneling_rate(&path(1e5, EC), 1e-22, 0.0).unwrap();
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn rate_scales_inversely_with_resistance_product() {
        let df = -1e-22;
        let r1 = cotunneling_rate(&path(1e5, EC), df, 0.1).unwrap();
        let r2 = cotunneling_rate(&path(1e6, EC), df, 0.1).unwrap();
        // R₁R₂ grows by 100, so the rate must fall by ~100.
        let ratio = r1 / r2;
        assert!((ratio - 100.0).abs() / 100.0 < 1e-6);
    }

    #[test]
    fn rate_grows_with_temperature_squared_term() {
        let df = -1e-23;
        let cold = cotunneling_rate(&path(1e5, EC), df, 0.05).unwrap();
        let warm = cotunneling_rate(&path(1e5, EC), df, 5.0).unwrap();
        assert!(warm > cold);
    }

    #[test]
    fn leakage_ratio_grows_for_transparent_junctions() {
        // Deep blockade at low temperature: sequential leakage is tiny, so
        // the ratio is enormous, and it is larger for lower R_t.
        let bias = 0.1 * EC;
        let low_r = blockade_leakage_ratio(2.0 * RESISTANCE_QUANTUM, EC, bias, 1.0).unwrap();
        let high_r = blockade_leakage_ratio(200.0 * RESISTANCE_QUANTUM, EC, bias, 1.0).unwrap();
        assert!(low_r > high_r);
        assert!(low_r > 1.0, "cotunneling must dominate deep in blockade");
    }

    #[test]
    fn leakage_ratio_validates_charging_energy() {
        assert!(blockade_leakage_ratio(1e5, -EC, 1e-22, 1.0).is_err());
    }

    #[test]
    fn zero_sequential_rate_reports_infinite_ratio() {
        let ratio = blockade_leakage_ratio(1e5, EC, 0.01 * EC, 0.0).unwrap();
        assert!(ratio.is_infinite());
    }
}
