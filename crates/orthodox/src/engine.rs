//! [`StationaryEngine`] adapter for the analytic SET model.
//!
//! The exact birth–death solver of [`SingleElectronTransistor`] is the
//! toolkit's "SPICE-style analytic model" in the paper's taxonomy: a closed
//! characteristic `I(V_ds, V_gs)` with no state enumeration. Wrapping it in
//! an operating point (temperature and background charge) makes it drivable
//! through the same trait — and therefore the same parallel
//! [`se_engine::SweepRunner`] — as the detailed master-equation and kinetic
//! Monte-Carlo engines.

use crate::error::OrthodoxError;
use crate::set::SingleElectronTransistor;
use se_engine::{ControlId, ObservableId, StationaryEngine};

/// Control handle values of [`AnalyticSetEngine`].
const CONTROL_DRAIN: usize = 0;
const CONTROL_GATE: usize = 1;

/// The analytic SET model at a fixed operating point (temperature and
/// background charge), exposing drain and gate as sweepable controls and
/// the drain current as the observable.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticSetEngine {
    set: SingleElectronTransistor,
    temperature: f64,
    q0: f64,
    base_vds: f64,
    base_vgs: f64,
}

impl AnalyticSetEngine {
    /// Wraps `set` at the given temperature (kelvin) and background charge
    /// (units of `e`).
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] for a negative or
    /// non-finite temperature or a non-finite background charge.
    pub fn new(
        set: SingleElectronTransistor,
        temperature: f64,
        q0: f64,
    ) -> Result<Self, OrthodoxError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        if !q0.is_finite() {
            return Err(OrthodoxError::InvalidParameter(
                "background charge must be finite".into(),
            ));
        }
        Ok(AnalyticSetEngine {
            set,
            temperature,
            q0,
            base_vds: 0.0,
            base_vgs: 0.0,
        })
    }

    /// Sets the default drain and gate voltages used when a sweep does not
    /// override them (e.g. the fixed drain bias of a gate sweep).
    #[must_use]
    pub fn with_bias(mut self, vds: f64, vgs: f64) -> Self {
        self.base_vds = vds;
        self.base_vgs = vgs;
        self
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &SingleElectronTransistor {
        &self.set
    }
}

impl SingleElectronTransistor {
    /// The device as a [`StationaryEngine`] at the given operating point —
    /// the entry point for driving the analytic model through the unified
    /// sweep layer.
    ///
    /// # Errors
    ///
    /// See [`AnalyticSetEngine::new`].
    pub fn stationary_engine(
        &self,
        temperature: f64,
        q0: f64,
    ) -> Result<AnalyticSetEngine, OrthodoxError> {
        AnalyticSetEngine::new(self.clone(), temperature, q0)
    }
}

impl StationaryEngine for AnalyticSetEngine {
    type Error = OrthodoxError;

    fn engine_name(&self) -> &'static str {
        "analytic-set"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, OrthodoxError> {
        match name.to_ascii_lowercase().as_str() {
            "drain" | "vd" | "vds" => Ok(ControlId(CONTROL_DRAIN)),
            "gate" | "vg" | "vgs" => Ok(ControlId(CONTROL_GATE)),
            other => Err(OrthodoxError::InvalidParameter(format!(
                "the analytic SET has no control named `{other}` (use `drain` or `gate`)"
            ))),
        }
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, OrthodoxError> {
        match name.to_ascii_lowercase().as_str() {
            "drain" | "jd" | "id" | "i" => Ok(ObservableId(0)),
            other => Err(OrthodoxError::InvalidParameter(format!(
                "the analytic SET has no observable named `{other}` (use `drain`)"
            ))),
        }
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        _seed: u64,
    ) -> Result<Vec<f64>, OrthodoxError> {
        let mut vds = self.base_vds;
        let mut vgs = self.base_vgs;
        for &(ControlId(control), value) in controls {
            match control {
                CONTROL_DRAIN => vds = value,
                CONTROL_GATE => vgs = value,
                other => {
                    return Err(OrthodoxError::InvalidParameter(format!(
                        "unknown control handle {other}"
                    )))
                }
            }
        }
        let current = self.set.current(vds, vgs, self.q0, self.temperature)?;
        observables
            .iter()
            .map(|&ObservableId(observable)| {
                if observable == 0 {
                    Ok(current)
                } else {
                    Err(OrthodoxError::InvalidParameter(format!(
                        "unknown observable handle {observable}"
                    )))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_engine::SweepRunner;

    fn engine() -> AnalyticSetEngine {
        SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)
            .unwrap()
            .stationary_engine(1.0, 0.0)
            .unwrap()
    }

    #[test]
    fn construction_validates_operating_point() {
        let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        assert!(set.stationary_engine(-1.0, 0.0).is_err());
        assert!(set.stationary_engine(1.0, f64::NAN).is_err());
        assert!(set.stationary_engine(4.2, 0.3).is_ok());
    }

    #[test]
    fn names_resolve_case_insensitively() {
        let engine = engine();
        assert_eq!(engine.resolve_control("Gate").unwrap(), ControlId(1));
        assert_eq!(engine.resolve_control("VDS").unwrap(), ControlId(0));
        assert_eq!(engine.resolve_observable("JD").unwrap(), ObservableId(0));
        assert!(engine.resolve_control("bulk").is_err());
        assert!(engine.resolve_observable("JS2").is_err());
    }

    #[test]
    fn trait_currents_match_the_direct_model() {
        let engine = engine().with_bias(1e-3, 0.0);
        let period = engine.device().gate_period();
        let vg = 0.5 * period;
        let via_trait = engine
            .stationary_current(
                &[(engine.resolve_control("gate").unwrap(), vg)],
                engine.resolve_observable("drain").unwrap(),
                99,
            )
            .unwrap();
        let direct = engine.device().current(1e-3, vg, 0.0, 1.0).unwrap();
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn runner_sweep_reproduces_the_oscillation_peak() {
        let engine = engine().with_bias(1e-3, 0.0);
        let period = engine.device().gate_period();
        let values = se_engine::linspace(0.0, period, 41).unwrap();
        let sweep = SweepRunner::new()
            .run(&engine, "gate", &values, "drain")
            .unwrap();
        let peak = sweep.iter().map(|p| p.current).fold(f64::MIN, f64::max);
        let valley = sweep[0].current.abs();
        assert!(peak > 100.0 * valley.max(1e-18));
    }
}
