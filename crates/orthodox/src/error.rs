//! Error type for the orthodox-theory layer.

use se_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or evaluating a tunnel system.
#[derive(Debug, Clone, PartialEq)]
pub enum OrthodoxError {
    /// A physical parameter was outside its valid domain.
    InvalidParameter(String),
    /// The island capacitance matrix is singular — usually an island with no
    /// capacitive connection at all.
    SingularCapacitanceMatrix(String),
    /// The system refers to an island or external node that does not exist.
    UnknownNode(String),
    /// A numerical routine failed.
    Numeric(NumericError),
}

impl fmt::Display for OrthodoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrthodoxError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            OrthodoxError::SingularCapacitanceMatrix(msg) => {
                write!(f, "singular capacitance matrix: {msg}")
            }
            OrthodoxError::UnknownNode(msg) => write!(f, "unknown node: {msg}"),
            OrthodoxError::Numeric(err) => write!(f, "numerical error: {err}"),
        }
    }
}

impl Error for OrthodoxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OrthodoxError::Numeric(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NumericError> for OrthodoxError {
    fn from(err: NumericError) -> Self {
        OrthodoxError::Numeric(err)
    }
}

impl From<se_engine::GridError> for OrthodoxError {
    fn from(err: se_engine::GridError) -> Self {
        OrthodoxError::InvalidParameter(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = OrthodoxError::InvalidParameter("negative capacitance".into());
        assert!(err.to_string().contains("negative capacitance"));

        let err: OrthodoxError = NumericError::SingularMatrix { pivot: 1 }.into();
        assert!(err.to_string().contains("numerical error"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrthodoxError>();
    }
}
