//! Incremental event-rate maintenance with O(log E) tree selection.
//!
//! [`RateContext::fill_rates`] re-evaluates every candidate event from
//! scratch after each tunnel event — O(E) work per step, which pins the
//! Monte-Carlo loop's cost to the circuit size. This module exploits two
//! structural facts of orthodox theory to avoid that:
//!
//! 1. **ΔF is linear in the island occupation.** Firing an a→b event on
//!    junction `f` shifts every junction `j`'s ΔF potential-gap term by the
//!    build-time constant [`TunnelSystem::junction_coupling`]`(f, j)`
//!    (negated for b→a), so the table maintains every ΔF by one axpy over
//!    `f`'s *strong list* ([`TunnelSystem::junction_strong_couplings`]) —
//!    the junctions whose coupling is non-negligible — and recomputes the
//!    Boltzmann kernel only for those events. Couplings decay with
//!    electrostatic distance, so the strong list is short for large arrays
//!    and the per-event cost is O(strong + log E), not O(E).
//! 2. **Unlisted couplings are negligible, and frozen events are free.**
//!    An event outside every fired strong list keeps its ΔF and rate
//!    verbatim; the drift such an event can accumulate between two exact
//!    refreshes is bounded by [`TunnelSystem::coupling_margin`], a few
//!    parts in 10⁷ of the strongest coupling. An event whose maintained ΔF
//!    sits past the frozen cutoff costs one compare — its rate is exactly
//!    `0.0`, no kernel evaluation.
//!
//! The rates live in the leaves of a fixed-shape [`PartialSumTree`],
//! giving an O(log E) total and an O(log E) inverse-CDF selection.
//!
//! Synchronisation contract: the table tracks the [`LiveState`] generation
//! counter. Drive/background syncs, explicit refreshes and the periodic
//! exact refresh all bump it, and the table answers by refilling from
//! scratch — every ΔF recomputed from the freshly solved potentials with
//! the very expression `fill_rates` uses. The deterministic refresh
//! cadence that bounds the potential drift therefore bounds the rate-table
//! drift the same way, and at every refill the table is bit-identical to a
//! `fill_rates` pass (pinned by the proptests in
//! `tests/integration_hotpath.rs`). Between refills the maintained rates
//! are a pure function of the refill state and the fired-event sequence,
//! so runs are bit-reproducible; they differ from a per-step `fill_rates`
//! in final ulps (axpy association) — which, together with the tree
//! total's pairwise association, makes the kernel revision trace-visible
//! (see `docs/DETERMINISM.md` §10).

use crate::batch::BatchedLiveState;
use crate::live::{LiveState, RateContext};
use crate::rates::rate_from_parts;
use crate::system::{Direction, TunnelEvent, TunnelSystem};
use se_numeric::partial_sum::PartialSumTree;
use se_units::constants::E;

/// Everything a ΔF/rate evaluation needs, gathered once per entry point so
/// the per-junction routines take one borrow instead of seven.
struct EvalParams<'a> {
    endpoints: &'a [(usize, usize)],
    self_energies: &'a [f64],
    prefactors: &'a [f64],
    kt: f64,
    inv_kt: f64,
    /// The `fill_rates` frozen cutoff: above it the rate is exactly zero.
    cutoff: f64,
    /// Endpoint-potential storage (flat scalar buffer or SoA planes).
    phi: &'a [f64],
    /// Distance between consecutive endpoints in `phi` (1 for the scalar
    /// buffer, the replica count for the batched planes).
    stride: usize,
    /// Lane offset inside each endpoint's slot (0 for scalar).
    lane: usize,
}

impl<'a> EvalParams<'a> {
    fn new(ctx: &'a RateContext, phi: &'a [f64], stride: usize, lane: usize) -> Self {
        EvalParams {
            endpoints: ctx.endpoints(),
            self_energies: ctx.self_energies(),
            prefactors: ctx.prefactors(),
            kt: ctx.kt(),
            inv_kt: ctx.inv_kt(),
            cutoff: ctx.frozen_cutoff(),
            phi,
            stride,
            lane,
        }
    }

    /// Both directed ΔF values of junction `j` from the live potentials —
    /// operation for operation the `fill_rates` expression.
    #[inline]
    fn deltas(&self, j: usize) -> (f64, f64) {
        let (ia, ib) = self.endpoints[j];
        let phi_gap =
            E * (self.phi[ia * self.stride + self.lane] - self.phi[ib * self.stride + self.lane]);
        let self_energy = self.self_energies[j];
        (phi_gap + self_energy, self_energy - phi_gap)
    }

    /// One directed rate — the `fill_rates` cutoff-then-kernel expression.
    #[inline]
    fn rate(&self, j: usize, df: f64) -> f64 {
        if df > self.cutoff {
            0.0
        } else {
            rate_from_parts(df, self.prefactors[j], self.kt, self.inv_kt)
        }
    }
}

/// The engine-agnostic core: the maintained ΔF vector and the partial-sum
/// tree whose leaves are the event rates in canonical
/// [`TunnelSystem::event`] order. The scalar and batched wrappers differ
/// only in how they address the potential storage during refills, so both
/// run literally this code — which is what keeps a batched lane's
/// maintained rates bit-identical to the standalone scalar table's.
#[derive(Debug, Clone)]
struct TableCore {
    tree: PartialSumTree,
    /// Maintained directed ΔF values (joule), interleaved `[a→b, b→a]` per
    /// junction — axpy-updated between refills, recomputed exactly from the
    /// live potentials at every refill.
    df: Vec<f64>,
    /// Leaf indices whose rate bits changed this event (always ascending:
    /// the strong list is sorted).
    changed: Vec<u32>,
    /// The live-state generation the table was last filled against.
    seen_generation: u64,
}

impl TableCore {
    fn new(junctions: usize) -> Self {
        TableCore {
            tree: PartialSumTree::new(2 * junctions),
            df: vec![0.0; 2 * junctions],
            changed: Vec::new(),
            seen_generation: 0,
        }
    }

    /// Full refill: recompute every ΔF and rate from the live potentials
    /// and rebuild the tree — the table twin of an exact potential refresh.
    fn refill(&mut self, p: &EvalParams, generation: u64) {
        for j in 0..self.df.len() / 2 {
            let (df_ab, df_ba) = p.deltas(j);
            self.df[2 * j] = df_ab;
            self.df[2 * j + 1] = df_ba;
            self.tree.set_leaf(2 * j, p.rate(j, df_ab));
            self.tree.set_leaf(2 * j + 1, p.rate(j, df_ba));
        }
        self.tree.rebuild();
        self.seen_generation = generation;
    }

    /// Post-event maintenance. If the live state refreshed (or synced)
    /// under us, refill from the fresh potentials; otherwise one axpy over
    /// the fired junction's strong list — ΔF shifts by the build-time
    /// coupling constant, the Boltzmann kernel is recomputed only for the
    /// shifted events (a frozen event past the cutoff costs one compare),
    /// and the tree is fixed up along the changed leaves.
    fn apply_event(
        &mut self,
        system: &TunnelSystem,
        fired: usize,
        sign: f64,
        p: &EvalParams,
        generation: u64,
    ) {
        if generation != self.seen_generation {
            self.refill(p, generation);
            return;
        }
        self.changed.clear();
        let strong = system.junction_strong_couplings(fired);
        let values = system.junction_strong_coupling_values(fired);
        for (&j, &g) in strong.iter().zip(values) {
            let j = j as usize;
            let shift = sign * g;
            let df_ab = self.df[2 * j] + shift;
            let df_ba = self.df[2 * j + 1] - shift;
            self.df[2 * j] = df_ab;
            self.df[2 * j + 1] = df_ba;
            let rate_ab = p.rate(j, df_ab);
            let rate_ba = p.rate(j, df_ba);
            if rate_ab.to_bits() != self.tree.leaf(2 * j).to_bits() {
                self.tree.set_leaf(2 * j, rate_ab);
                self.changed.push((2 * j) as u32);
            }
            if rate_ba.to_bits() != self.tree.leaf(2 * j + 1).to_bits() {
                self.tree.set_leaf(2 * j + 1, rate_ba);
                self.changed.push((2 * j + 1) as u32);
            }
        }
        // Past ~1/8 of the leaves the scattered partial fix-up costs more
        // than one branch-free sequential rebuild; the two produce
        // bit-identical nodes (the tree's recompute-never-adjust contract),
        // so the switch is invisible to totals, selections and traces.
        if 8 * self.changed.len() >= self.tree.len() {
            self.tree.rebuild();
        } else {
            // Pushed in ascending strong-list order — already sorted.
            let changed = std::mem::take(&mut self.changed);
            self.tree.update_leaves(&changed);
            self.changed = changed;
        }
    }

    fn select(&self, target: f64) -> usize {
        let idx = self.tree.descend(target);
        if self.tree.leaf(idx) > 0.0 {
            return idx;
        }
        // Final-bucket clamp: floating-point round-off steered the descent
        // onto a zero-rate leaf (or past the last event); fall back to the
        // last positive-rate event, mirroring the linear scan's fallback.
        (0..self.tree.len())
            .rev()
            .find(|&e| self.tree.leaf(e) > 0.0)
            .expect("the total rate was positive")
    }
}

/// The sign of a fired event's coupling shift: +1 for a→b, −1 for b→a —
/// the same convention [`LiveState::apply`] uses for its potential axpy.
fn event_sign(event: TunnelEvent) -> f64 {
    match event.direction {
        Direction::AToB => 1.0,
        Direction::BToA => -1.0,
    }
}

/// Incrementally maintained event rates for a scalar [`LiveState`] walk.
///
/// Construct once, then per Monte-Carlo step: [`EventRateTable::sync`]
/// (after any system mutation), read [`EventRateTable::total`], select with
/// [`EventRateTable::select`], apply the event to the live state, and call
/// [`EventRateTable::apply_event`] — O(strong list + log E) instead of
/// `fill_rates`' O(E).
///
/// # Example
///
/// ```
/// use se_orthodox::system::{ChargeState, TunnelSystemBuilder};
/// use se_orthodox::{EventRateTable, LiveState, RateContext};
///
/// # fn main() -> Result<(), se_orthodox::OrthodoxError> {
/// let mut b = TunnelSystemBuilder::new();
/// let island = b.island("dot", 0.0);
/// let drain = b.external("drain", 0.25);
/// let source = b.external("source", 0.0);
/// b.junction("JD", drain, island, 0.5e-18, 100e3);
/// b.junction("JS", island, source, 0.5e-18, 100e3);
/// let system = b.build()?;
/// let ctx = RateContext::new(&system, 1.0)?;
/// let mut live = LiveState::new(&system, ChargeState::neutral(1));
/// let mut table = EventRateTable::new(&system, &ctx, &live);
///
/// let event = system.event(table.select(0.5 * table.total()));
/// live.apply(&system, event);
/// table.apply_event(&system, &ctx, &live, event);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventRateTable {
    core: TableCore,
}

impl EventRateTable {
    /// Builds and fills the table for the live state's current potentials.
    #[must_use]
    pub fn new(_system: &TunnelSystem, ctx: &RateContext, live: &LiveState) -> Self {
        let mut table = EventRateTable {
            core: TableCore::new(ctx.endpoints().len()),
        };
        table.core.refill(
            &EvalParams::new(ctx, live.endpoint_potentials(), 1, 0),
            live.generation(),
        );
        table
    }

    /// Refills the table if the live state was refreshed or synced since
    /// the last fill (detected via the generation counter). Returns whether
    /// a refill happened. Call after [`LiveState::sync`], before reading
    /// totals.
    pub fn sync(&mut self, _system: &TunnelSystem, ctx: &RateContext, live: &LiveState) -> bool {
        if live.generation() == self.core.seen_generation {
            return false;
        }
        self.core.refill(
            &EvalParams::new(ctx, live.endpoint_potentials(), 1, 0),
            live.generation(),
        );
        true
    }

    /// Folds a just-applied event into the table — call immediately after
    /// [`LiveState::apply`] with the same event. Handles the periodic exact
    /// refresh transparently (a refresh during the apply triggers a full
    /// refill from the fresh potentials, the same deterministic cadence as
    /// the potentials themselves).
    pub fn apply_event(
        &mut self,
        system: &TunnelSystem,
        ctx: &RateContext,
        live: &LiveState,
        event: TunnelEvent,
    ) {
        self.core.apply_event(
            system,
            event.junction,
            event_sign(event),
            &EvalParams::new(ctx, live.endpoint_potentials(), 1, 0),
            live.generation(),
        );
    }

    /// The total rate — the partial-sum tree's root, a fixed pairwise
    /// reduction of the leaf rates (associates differently from
    /// [`RateContext::fill_rates`]' sequential fold; see the module docs).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.core.tree.total()
    }

    /// The maintained rate of canonical event `index`.
    #[must_use]
    pub fn rate(&self, index: usize) -> f64 {
        self.core.tree.leaf(index)
    }

    /// The maintained ΔF of canonical event `index`, in joule.
    #[must_use]
    pub fn delta_f(&self, index: usize) -> f64 {
        self.core.df[index]
    }

    /// Number of candidate events (2 × junctions).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.core.tree.len()
    }

    /// Inverse-CDF selection: the canonical event index whose cumulative
    /// bucket contains `target ∈ [0, total)`, by O(log E) tree descent,
    /// with the final-bucket clamp to the last positive-rate event when
    /// round-off leaves `target` above every accumulated sum.
    ///
    /// # Panics
    ///
    /// Panics if every rate is zero (callers gate on `total() > 0`).
    #[must_use]
    pub fn select(&self, target: f64) -> usize {
        self.core.select(target)
    }
}

/// One lane's incrementally maintained event rates over a
/// [`BatchedLiveState`]'s SoA planes.
///
/// Identical maintenance code to [`EventRateTable`] — only the potential
/// addressing differs (plane stride and lane offset instead of the flat
/// scalar buffer) — so lane `r`'s table is bit-for-bit the table a
/// standalone scalar walk of the same event sequence maintains.
#[derive(Debug, Clone)]
pub struct BatchedEventRateTable {
    core: TableCore,
    lane: usize,
}

impl BatchedEventRateTable {
    /// Builds and fills lane `lane`'s table from the batched potentials.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn new(
        _system: &TunnelSystem,
        ctx: &RateContext,
        live: &BatchedLiveState,
        lane: usize,
    ) -> Self {
        assert!(lane < live.replicas(), "lane {lane} out of range");
        let mut table = BatchedEventRateTable {
            core: TableCore::new(ctx.endpoints().len()),
            lane,
        };
        table.core.refill(
            &EvalParams::new(ctx, live.endpoint_planes(), live.replicas(), lane),
            live.generation(lane),
        );
        table
    }

    /// The lane this table maintains.
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Lane twin of [`EventRateTable::sync`].
    pub fn sync(
        &mut self,
        _system: &TunnelSystem,
        ctx: &RateContext,
        live: &BatchedLiveState,
    ) -> bool {
        if live.generation(self.lane) == self.core.seen_generation {
            return false;
        }
        self.core.refill(
            &EvalParams::new(ctx, live.endpoint_planes(), live.replicas(), self.lane),
            live.generation(self.lane),
        );
        true
    }

    /// Lane twin of [`EventRateTable::apply_event`] — call after the lane's
    /// event was applied (individually or via a lockstep `apply_all`).
    pub fn apply_event(
        &mut self,
        system: &TunnelSystem,
        ctx: &RateContext,
        live: &BatchedLiveState,
        event: TunnelEvent,
    ) {
        self.core.apply_event(
            system,
            event.junction,
            event_sign(event),
            &EvalParams::new(ctx, live.endpoint_planes(), live.replicas(), self.lane),
            live.generation(self.lane),
        );
    }

    /// Lane twin of [`EventRateTable::total`].
    #[must_use]
    pub fn total(&self) -> f64 {
        self.core.tree.total()
    }

    /// Lane twin of [`EventRateTable::rate`].
    #[must_use]
    pub fn rate(&self, index: usize) -> f64 {
        self.core.tree.leaf(index)
    }

    /// Lane twin of [`EventRateTable::delta_f`].
    #[must_use]
    pub fn delta_f(&self, index: usize) -> f64 {
        self.core.df[index]
    }

    /// Lane twin of [`EventRateTable::event_count`].
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.core.tree.len()
    }

    /// Lane twin of [`EventRateTable::select`].
    ///
    /// # Panics
    ///
    /// Panics if every rate is zero (callers gate on `total() > 0`).
    #[must_use]
    pub fn select(&self, target: f64) -> usize {
        self.core.select(target)
    }
}

impl RateContext {
    /// The incremental sibling of [`RateContext::fill_rates`]: folds a
    /// just-applied event into `table` instead of refilling every rate.
    /// Every strongly-coupled ΔF shifts by its build-time coupling constant
    /// (one axpy), the Boltzmann kernel is recomputed only for those
    /// events, exact-zero (sub-threshold) couplings and frozen events past
    /// the cutoff skip entirely, and the partial-sum tree is fixed up along
    /// the changed leaves. Delegates to [`EventRateTable::apply_event`].
    pub fn apply_event_rates(
        &self,
        system: &TunnelSystem,
        live: &LiveState,
        table: &mut EventRateTable,
        event: TunnelEvent,
    ) {
        table.apply_event(system, self, live, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ChargeState, TunnelSystemBuilder};

    /// Two-island chain with a gate (the `live` module's test circuit).
    fn chain(vd: f64, vg: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let i0 = b.island("i0", 0.0);
        let i1 = b.island("i1", 0.1);
        let drain = b.external("drain", vd);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("J0", drain, i0, 0.7e-18, 80e3);
        b.junction("J1", i0, i1, 0.4e-18, 120e3);
        b.junction("J2", i1, source, 0.6e-18, 90e3);
        b.capacitor("Cg0", gate, i0, 0.3e-18);
        b.capacitor("Cg1", gate, i1, 0.5e-18);
        b.build().unwrap()
    }

    fn assert_table_matches_fill(
        system: &TunnelSystem,
        ctx: &RateContext,
        live: &LiveState,
        table: &EventRateTable,
        context: &str,
    ) {
        let mut rates = Vec::new();
        ctx.fill_rates(system, live, &mut rates);
        for (e, &expected) in rates.iter().enumerate() {
            assert_eq!(
                table.rate(e).to_bits(),
                expected.to_bits(),
                "{context}: event {e} rate diverged from fill_rates"
            );
        }
    }

    #[test]
    fn refills_match_fill_rates_bit_for_bit_over_event_walks() {
        // At every refill boundary — construction, forced refresh, drive
        // sync — the maintained rates are fill_rates' bits exactly, for any
        // temperature including T = 0 and whatever walk came before.
        for temperature in [0.0, 0.1, 1.0, 4.2] {
            let system = chain(2e-3, 0.05);
            let ctx = RateContext::new(&system, temperature).unwrap();
            let mut live = LiveState::new(&system, ChargeState::neutral(2));
            let mut table = EventRateTable::new(&system, &ctx, &live);
            assert_table_matches_fill(
                &system,
                &ctx,
                &live,
                &table,
                &format!("T = {temperature}, fresh"),
            );
            let mut x = 17_u64;
            for round in 0..5 {
                for _ in 0..200 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let event = system.event((x >> 33) as usize % system.event_count());
                    live.apply(&system, event);
                    table.apply_event(&system, &ctx, &live, event);
                }
                live.refresh(&system);
                assert!(table.sync(&system, &ctx, &live), "refresh forces a refill");
                assert_table_matches_fill(
                    &system,
                    &ctx,
                    &live,
                    &table,
                    &format!("T = {temperature}, round {round}"),
                );
            }
        }
    }

    #[test]
    fn axpy_maintenance_tracks_the_exact_rates_to_first_order() {
        // Between refills the maintained ΔFs differ from a fresh
        // recomputation only in final ulps (axpy association vs. the
        // potential-difference expression), so every non-negligible rate
        // must track fill_rates to far better than physical accuracy. This
        // pins the coupling-table sign convention: a sign error would be
        // off by whole Boltzmann factors after one event.
        for temperature in [0.1, 1.0] {
            let system = chain(2e-3, 0.05);
            let ctx = RateContext::new(&system, temperature).unwrap();
            let mut live = LiveState::new(&system, ChargeState::neutral(2));
            let mut table = EventRateTable::new(&system, &ctx, &live);
            let mut rates = Vec::new();
            let mut x = 29_u64;
            for step in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let event = system.event((x >> 33) as usize % system.event_count());
                live.apply(&system, event);
                table.apply_event(&system, &ctx, &live, event);
                let total = ctx.fill_rates(&system, &live, &mut rates);
                for (e, &fresh) in rates.iter().enumerate() {
                    if fresh > 1e-12 * total {
                        let maintained = table.rate(e);
                        assert!(
                            (maintained - fresh).abs() <= 1e-9 * fresh,
                            "T = {temperature}, step {step}, event {e}: \
                             maintained {maintained:e} vs fresh {fresh:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn maintained_delta_f_crosses_the_frozen_cutoff_both_ways() {
        // Drive a walk long enough that some event's maintained ΔF crosses
        // the frozen cutoff in each direction — the rate must snap exactly
        // to 0.0 past the cutoff and come back non-zero below it, with no
        // refill in between.
        let system = chain(5e-3, 0.0);
        let ctx = RateContext::new(&system, 0.02).unwrap();
        let mut live = LiveState::new(&system, ChargeState::neutral(2));
        let mut table = EventRateTable::new(&system, &ctx, &live);
        let cutoff = ctx.frozen_cutoff();
        let mut froze = false;
        let mut thawed = false;
        let mut was_frozen: Vec<bool> = (0..table.event_count())
            .map(|e| table.delta_f(e) > cutoff)
            .collect();
        let mut x = 5_u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let event = system.event((x >> 33) as usize % system.event_count());
            live.apply(&system, event);
            table.apply_event(&system, &ctx, &live, event);
            for (e, seen) in was_frozen.iter_mut().enumerate() {
                let frozen = table.delta_f(e) > cutoff;
                if frozen != *seen {
                    if frozen {
                        froze = true;
                        assert_eq!(table.rate(e), 0.0, "frozen event {e} must rate 0");
                    } else {
                        thawed = true;
                    }
                    *seen = frozen;
                }
            }
        }
        assert!(froze, "no event froze across the cutoff");
        assert!(thawed, "no event thawed across the cutoff");
    }

    #[test]
    fn sync_refills_after_drive_changes() {
        let mut system = chain(0.0, 0.0);
        let ctx = RateContext::new(&system, 1.0).unwrap();
        let mut live = LiveState::new(&system, ChargeState::neutral(2));
        let mut table = EventRateTable::new(&system, &ctx, &live);
        assert!(!table.sync(&system, &ctx, &live), "clean state: no refill");
        system.set_external_voltage(0, 5e-3).unwrap();
        live.sync(&system);
        assert!(table.sync(&system, &ctx, &live), "drive change: refill");
        assert_table_matches_fill(&system, &ctx, &live, &table, "after drive sync");
    }

    #[test]
    fn selection_matches_rates_and_clamps_the_final_bucket() {
        let system = chain(2e-3, 0.05);
        let ctx = RateContext::new(&system, 1.0).unwrap();
        let live = LiveState::new(&system, ChargeState::neutral(2));
        let table = EventRateTable::new(&system, &ctx, &live);
        let total = table.total();
        assert!(total > 0.0);
        // Any in-range target lands on a positive-rate event.
        for i in 0..100 {
            let target = total * i as f64 / 100.0;
            let chosen = table.select(target);
            assert!(
                table.rate(chosen) > 0.0,
                "target {target} chose a zero rate"
            );
        }
        // At (or past) the total, the clamp returns the last positive leaf.
        let last_positive = (0..table.event_count())
            .rev()
            .find(|&e| table.rate(e) > 0.0)
            .unwrap();
        assert_eq!(table.select(total), last_positive);
        assert_eq!(table.select(total * 1.5), last_positive);
    }

    #[test]
    fn strong_lists_cover_every_non_negligible_coupling() {
        let system = chain(1e-3, 0.02);
        let junctions = system.junctions().len();
        let mut g_max = 0.0_f64;
        for f in 0..junctions {
            for j in 0..junctions {
                g_max = g_max.max(system.junction_coupling(f, j).abs());
            }
        }
        assert!(g_max > 0.0);
        for f in 0..junctions {
            let strong = system.junction_strong_couplings(f);
            let values = system.junction_strong_coupling_values(f);
            assert_eq!(strong.len(), values.len(), "value slice aligned");
            assert!(strong.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for (&j, &g) in strong.iter().zip(values) {
                assert_eq!(
                    g.to_bits(),
                    system.junction_coupling(f, j as usize).to_bits(),
                    "stored coupling {f}->{j} differs from the dense lookup"
                );
            }
            for j in 0..junctions {
                let g = system.junction_coupling(f, j).abs();
                let listed = strong.contains(&(j as u32));
                if g > 1e-7 * g_max {
                    assert!(listed, "coupling {f}->{j} ({g:e}) missing from strong list");
                }
                if !listed {
                    assert!(
                        g <= 1e-7 * g_max,
                        "unlisted coupling {f}->{j} ({g:e}) above threshold"
                    );
                }
            }
            // A junction always couples strongly to itself (unless it moves
            // no island charge at all).
            assert!(strong.contains(&(f as u32)));
        }
        assert!(system.coupling_margin() > 0.0);
    }

    #[test]
    fn batched_lane_table_matches_the_scalar_table() {
        let system = chain(2e-3, 0.05);
        let ctx = RateContext::new(&system, 0.5).unwrap();
        let replicas = 3;
        let mut batch = BatchedLiveState::new(&system, ChargeState::neutral(2), replicas).unwrap();
        let mut scalars: Vec<LiveState> = (0..replicas)
            .map(|_| LiveState::new(&system, ChargeState::neutral(2)))
            .collect();
        let mut lane_tables: Vec<BatchedEventRateTable> = (0..replicas)
            .map(|r| BatchedEventRateTable::new(&system, &ctx, &batch, r))
            .collect();
        let mut scalar_tables: Vec<EventRateTable> = scalars
            .iter()
            .map(|live| EventRateTable::new(&system, &ctx, live))
            .collect();
        let mut walks: Vec<u64> = (0..replicas).map(|r| 23 + 1000 * r as u64).collect();
        for _ in 0..500 {
            for r in 0..replicas {
                walks[r] = walks[r]
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let event = system.event((walks[r] >> 33) as usize % system.event_count());
                batch.apply(&system, event, r);
                scalars[r].apply(&system, event);
                lane_tables[r].apply_event(&system, &ctx, &batch, event);
                scalar_tables[r].apply_event(&system, &ctx, &scalars[r], event);
            }
        }
        for r in 0..replicas {
            assert_eq!(
                lane_tables[r].total().to_bits(),
                scalar_tables[r].total().to_bits(),
                "lane {r} total diverged"
            );
            for e in 0..system.event_count() {
                assert_eq!(
                    lane_tables[r].rate(e).to_bits(),
                    scalar_tables[r].rate(e).to_bits(),
                    "lane {r} event {e} diverged"
                );
                assert_eq!(
                    lane_tables[r].delta_f(e).to_bits(),
                    scalar_tables[r].delta_f(e).to_bits(),
                    "lane {r} event {e} ΔF diverged"
                );
            }
        }
    }
}
