//! Orthodox theory of single-electron tunnelling.
//!
//! This crate implements the physics layer the whole toolkit rests on: the
//! electrostatics of metallic islands coupled by tunnel junctions and
//! capacitors, the free-energy change of individual tunnel events, the
//! orthodox (first-order, sequential) tunnel rates, a second-order
//! cotunneling approximation, and the background-charge processes that the
//! paper identifies as the central obstacle for single-electron logic.
//!
//! The main entry points are:
//!
//! * [`TunnelSystem`] — a circuit of islands, external (voltage-driven)
//!   nodes, capacitors and tunnel junctions, with its capacitance-matrix
//!   electrostatics ([`system`]);
//! * [`tunnel_rate`] — the orthodox rate formula with its zero-temperature
//!   and zero-energy limits handled explicitly ([`rates`]);
//! * [`live`] — the incremental hot path: [`LiveState`] caches island
//!   potentials with O(islands) per-event updates (making per-event ΔF
//!   O(1)), and [`RateContext`] is the persistent rate table both the
//!   Monte-Carlo loop and the master-equation assembly share;
//! * [`cotunneling`] — the inelastic cotunneling rate estimate used to show
//!   when sequential-only simulation under-estimates blockade leakage;
//! * [`background`] — static offset charges, random-telegraph and
//!   random-walk drift processes;
//! * [`set`] — an exact (master-equation) solver for the canonical
//!   three-terminal SET, used as the reference characteristic throughout the
//!   experiments.
//!
//! # Example: blockade vs. conductance peak of a symmetric SET
//!
//! ```
//! use se_orthodox::set::SingleElectronTransistor;
//!
//! # fn main() -> Result<(), se_orthodox::OrthodoxError> {
//! let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
//! // Deep inside the blockade region the current at 10 mK is negligible.
//! let i_blocked = set.current(1e-4, 0.0, 0.0, 0.01)?;
//! // On a conductance peak (gate charge = e/2) the same bias conducts.
//! let i_peak = set.current(1e-4, set.gate_period() / 2.0, 0.0, 0.01)?;
//! assert!(i_peak.abs() > 1e3 * i_blocked.abs());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this crate uses to reject NaN alongside ordinary
// range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod background;
pub mod batch;
pub mod cotunneling;
pub mod engine;
pub mod error;
pub mod events;
pub mod live;
pub mod rates;
pub mod set;
pub mod system;

pub use batch::{BatchedLiveState, BatchedRateContext};
pub use engine::AnalyticSetEngine;
pub use error::OrthodoxError;
pub use events::{BatchedEventRateTable, EventRateTable};
pub use live::{LiveState, RateContext};
pub use rates::{tunnel_rate, tunnel_rate_zero_temperature};
pub use system::{
    Capacitor, ChargeState, Direction, Endpoint, Junction, TunnelEvent, TunnelSystem,
    TunnelSystemBuilder,
};
