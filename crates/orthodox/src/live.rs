//! The incremental hot path: cached island potentials with O(islands)
//! per-event updates and an O(1) per-event free-energy contract.
//!
//! Both hot loops of the toolkit — the kinetic Monte-Carlo event loop and
//! the master-equation state-space assembly — evaluate the free-energy
//! change of every candidate tunnel event in a long sequence of *nearby*
//! charge states. Recomputing island potentials from scratch costs
//! O(islands²) per state (a dense matrix–vector product against
//! `K = C_II⁻¹`); but a tunnel event only moves one electron, so the
//! potential update is a rank-one correction:
//!
//! ```text
//! φ' = φ + Δq_i · K[:, i]        (one axpy per changed island)
//! ```
//!
//! [`LiveState`] owns the charge state plus that cached potential vector,
//! and [`LiveState::delta_free_energy`] combines the cached potentials with
//! the per-junction self-charging table precomputed at build time
//! ([`TunnelSystem::junction_self_charging`]) into an **O(1) per event**
//! evaluation. Drive (voltage) and background-charge changes are folded in
//! the same way through the precomputed per-electrode response columns, so
//! a bias step is O(islands), not a fresh solve.
//!
//! Internally the cache is one flat endpoint-potential buffer — island
//! potentials followed by the external voltages — so the rate loop reads
//! any endpoint's potential by a precomputed flat index with no branching
//! on the endpoint kind.
//!
//! [`RateContext`] is the companion persistent rate table: junction
//! prefactors `1/(e²·R)`, self-charging energies, flat endpoint indices
//! and the thermal energy are computed once, so a rate refresh after an
//! event touches only the ΔF-dependent factors.
//! [`RateContext::fill_rates`] is the one shared event-enumeration +
//! rate-evaluation routine both the Gillespie loop and the master-equation
//! assembly build on.
//!
//! Floating-point discipline: incremental updates drift by one rounding
//! step per axpy, so [`LiveState`] transparently recomputes its potentials
//! from scratch every [`REFRESH_INTERVAL`] updates. The refresh schedule
//! depends only on the number of updates applied — never on wall clock or
//! thread scheduling — so runs remain bit-for-bit reproducible.

use crate::error::OrthodoxError;
use crate::rates::rate_from_parts;
use crate::system::{ChargeState, Endpoint, TunnelEvent, TunnelSystem};
use se_units::constants::{BOLTZMANN, E};

/// Number of incremental potential updates after which [`LiveState`]
/// recomputes its potentials exactly, bounding floating-point drift to
/// ~√`REFRESH_INTERVAL` rounding steps (≈10⁻¹⁴ relative) between resyncs.
pub const REFRESH_INTERVAL: u32 = 8192;

/// A charge state with incrementally-maintained island potentials.
///
/// See the [module documentation](self) for the update algebra. The
/// invariant is: `potentials() == system.island_potentials(state)` up to
/// accumulated rounding, **provided** the system's drive voltages and
/// background charges have not changed since the last [`LiveState::sync`]
/// (or construction/refresh).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveState {
    state: ChargeState,
    /// Flat endpoint-potential buffer: `[island potentials | external
    /// voltages]`. The external tail doubles as the record of the last
    /// drive values folded in, which is what `sync` compares against.
    phi: Vec<f64>,
    islands: usize,
    seen_backgrounds: Vec<f64>,
    updates_since_refresh: u32,
    /// Monotone counter of non-event potential revisions: every exact
    /// refresh, drive/background sync fold and island shift bumps it.
    /// Derived caches keyed on the potentials (the incremental event-rate
    /// table) compare generations to detect that their base state was
    /// rebuilt under them and they must refill rather than patch.
    generation: u64,
}

impl LiveState {
    /// Creates a live state for `state`, computing the potentials exactly.
    #[must_use]
    pub fn new(system: &TunnelSystem, state: ChargeState) -> Self {
        let islands = system.island_count();
        let mut live = LiveState {
            state,
            phi: vec![0.0; islands + system.external_count()],
            islands,
            seen_backgrounds: vec![0.0; islands],
            updates_since_refresh: 0,
            generation: 0,
        };
        live.refresh(system);
        live
    }

    /// The tracked charge state.
    #[must_use]
    pub fn state(&self) -> &ChargeState {
        &self.state
    }

    /// Consumes the live state, returning the charge state.
    #[must_use]
    pub fn into_state(self) -> ChargeState {
        self.state
    }

    /// The cached island potentials in volt.
    #[must_use]
    pub fn potentials(&self) -> &[f64] {
        &self.phi[..self.islands]
    }

    /// The full flat endpoint-potential buffer (islands, then externals),
    /// indexed by the flat endpoint indices of [`RateContext`].
    pub(crate) fn endpoint_potentials(&self) -> &[f64] {
        &self.phi
    }

    /// The non-event revision counter (see the `generation` field). Event
    /// applies bump it only when they trigger the periodic exact refresh.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Recomputes the potentials exactly from the current system state and
    /// resets the drift counter.
    pub fn refresh(&mut self, system: &TunnelSystem) {
        let islands = system.island_potentials(&self.state);
        self.phi[..self.islands].copy_from_slice(&islands);
        for k in 0..system.external_count() {
            self.phi[self.islands + k] = system.external_voltage(k);
        }
        for (seen, i) in self.seen_backgrounds.iter_mut().zip(0..) {
            *seen = system.background_charge(i);
        }
        self.updates_since_refresh = 0;
        self.generation = self.generation.wrapping_add(1);
    }

    /// Folds any drive-voltage or background-charge changes made to the
    /// system since the last sync into the cached potentials — one axpy of
    /// the precomputed response column per changed value, O(islands) each.
    ///
    /// Call this after mutating the system (and before reading potentials
    /// or free energies); the comparison pass itself is O(externals +
    /// islands) and free of floating-point effects when nothing changed.
    pub fn sync(&mut self, system: &TunnelSystem) {
        for k in 0..(self.phi.len() - self.islands) {
            let v = system.external_voltage(k);
            let seen = self.phi[self.islands + k];
            if v != seen {
                let dv = v - seen;
                axpy(&mut self.phi[..self.islands], system.drive_response(k), dv);
                self.phi[self.islands + k] = v;
                self.generation = self.generation.wrapping_add(1);
                self.count_update(system);
            }
        }
        for i in 0..self.seen_backgrounds.len() {
            let q0 = system.background_charge(i);
            if q0 != self.seen_backgrounds[i] {
                // q_i = −e·n_i + e·q0_i, so Δq0 adds e·Δq0 of island charge.
                let dq = E * (q0 - self.seen_backgrounds[i]);
                axpy(&mut self.phi[..self.islands], system.inverse_row(i), dq);
                self.seen_backgrounds[i] = q0;
                self.generation = self.generation.wrapping_add(1);
                self.count_update(system);
            }
        }
    }

    /// Applies a tunnel event: the island charges move one electron and the
    /// potentials are corrected with a single axpy of the junction's
    /// precomputed event-response column — O(islands) total, independent of
    /// junction count.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[inline]
    pub fn apply(&mut self, system: &TunnelSystem, event: TunnelEvent) {
        let (from, to) = system.event_endpoints(event);
        if let Endpoint::Island(i) = from {
            self.state.0[i] -= 1;
        }
        if let Endpoint::Island(i) = to {
            self.state.0[i] += 1;
        }
        let sign = match event.direction {
            crate::system::Direction::AToB => 1.0,
            crate::system::Direction::BToA => -1.0,
        };
        axpy(
            &mut self.phi[..self.islands],
            system.junction_response(event.junction),
            sign,
        );
        self.count_update(system);
    }

    /// Adds `delta` electrons to island `i` and corrects the potentials
    /// with one axpy — the primitive the master-equation enumeration uses
    /// to walk its state lattice incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shift_island(&mut self, system: &TunnelSystem, i: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        self.state.0[i] += delta;
        // q_i = −e·n_i + …, so `delta` electrons change the charge by −e·Δ.
        axpy(
            &mut self.phi[..self.islands],
            system.inverse_row(i),
            -E * delta as f64,
        );
        self.generation = self.generation.wrapping_add(1);
        self.count_update(system);
    }

    /// Free-energy change of a candidate event in the tracked state — O(1):
    /// two cached potentials and one precomputed self-charging constant.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[must_use]
    pub fn delta_free_energy(&self, system: &TunnelSystem, event: TunnelEvent) -> f64 {
        system.delta_free_energy_with_potentials(self.potentials(), event)
    }

    fn count_update(&mut self, system: &TunnelSystem) {
        self.updates_since_refresh += 1;
        if self.updates_since_refresh >= REFRESH_INTERVAL {
            self.refresh(system);
        }
    }
}

fn axpy(target: &mut [f64], column: &[f64], factor: f64) {
    for (t, &c) in target.iter_mut().zip(column) {
        *t += factor * c;
    }
}

/// Persistent per-junction rate table: everything about the orthodox rate
/// that does **not** depend on ΔF — junction prefactors, self-charging
/// energies, flat endpoint indices into the [`LiveState`] potential buffer
/// and the thermal energy — is computed once here, so a post-event rate
/// refresh touches only the ΔF-dependent factors.
#[derive(Debug, Clone, PartialEq)]
pub struct RateContext {
    temperature: f64,
    kt: f64,
    /// Reciprocal thermal energy, hoisting the division out of the
    /// per-event path (0 at zero temperature, where it is never used).
    inv_kt: f64,
    /// The ΔF above which the Boltzmann suppression underflows to exact
    /// zero (`MAX_EXPONENT · kT`): the one-compare fast path for frozen
    /// events, which dominate cold circuits.
    frozen_cutoff: f64,
    /// `1/(e²·R_j)` per junction.
    prefactors: Vec<f64>,
    /// `e²/2 · (K_aa + K_bb − 2·K_ab)` per junction: the self-charging
    /// energy in joule.
    self_energies: Vec<f64>,
    /// Flat endpoint indices `(a, b)` per junction into
    /// `LiveState::endpoint_potentials` (islands first, then externals).
    endpoints: Vec<(usize, usize)>,
}

impl RateContext {
    /// Builds the rate table for a system at the given temperature.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] for a negative or
    /// non-finite temperature (junction resistances were validated when the
    /// system was built).
    pub fn new(system: &TunnelSystem, temperature: f64) -> Result<Self, OrthodoxError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        let islands = system.island_count();
        let flat = |e: Endpoint| match e {
            Endpoint::Island(i) => i,
            Endpoint::External(k) => islands + k,
        };
        let kt = BOLTZMANN * temperature;
        Ok(RateContext {
            temperature,
            kt,
            inv_kt: if kt > 0.0 { 1.0 / kt } else { 0.0 },
            frozen_cutoff: crate::rates::MAX_EXPONENT * kt,
            prefactors: system
                .junctions()
                .iter()
                .map(|j| 1.0 / (E * E * j.resistance))
                .collect(),
            self_energies: (0..system.junctions().len())
                .map(|j| 0.5 * E * E * system.junction_self_charging(j))
                .collect(),
            endpoints: system
                .junctions()
                .iter()
                .map(|j| (flat(j.a), flat(j.b)))
                .collect(),
        })
    }

    /// The temperature the table was built for, in kelvin.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Orthodox rate of a single event given its free-energy change — the
    /// infallible O(1) fast path (same limits as
    /// [`crate::rates::tunnel_rate`]).
    ///
    /// # Panics
    ///
    /// Panics if `junction` is out of range.
    #[must_use]
    pub fn event_rate(&self, junction: usize, delta_f: f64) -> f64 {
        rate_from_parts(delta_f, self.prefactors[junction], self.kt, self.inv_kt)
    }

    /// The thermal energy `k_B·T` in joule.
    pub(crate) fn kt(&self) -> f64 {
        self.kt
    }

    /// The reciprocal thermal energy (0 at zero temperature).
    pub(crate) fn inv_kt(&self) -> f64 {
        self.inv_kt
    }

    /// The frozen-event ΔF cutoff `MAX_EXPONENT · kT`.
    pub(crate) fn frozen_cutoff(&self) -> f64 {
        self.frozen_cutoff
    }

    /// Per-junction prefactors `1/(e²·R)`.
    pub(crate) fn prefactors(&self) -> &[f64] {
        &self.prefactors
    }

    /// Per-junction self-charging energies in joule.
    pub(crate) fn self_energies(&self) -> &[f64] {
        &self.self_energies
    }

    /// Per-junction flat endpoint index pairs.
    pub(crate) fn endpoints(&self) -> &[(usize, usize)] {
        &self.endpoints
    }

    /// Evaluates the rate of **every** candidate event of the system in the
    /// given live state, in canonical event order ([`TunnelSystem::event`]),
    /// and returns the total rate. `rates` is resized to
    /// [`TunnelSystem::event_count`]; reusing one buffer across calls keeps
    /// the loop allocation-free.
    ///
    /// This is the one shared event-enumeration + rate-evaluation routine
    /// behind both the Gillespie loop (`se-montecarlo`'s `step`) and the
    /// master-equation state-space assembly. The live state must be in sync
    /// with the system ([`LiveState::sync`]).
    pub fn fill_rates(&self, system: &TunnelSystem, live: &LiveState, rates: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(self.endpoints.len(), system.junctions().len());
        let phi = live.endpoint_potentials();
        rates.resize(2 * self.endpoints.len(), 0.0);
        let mut total = 0.0;
        // A ΔF above `frozen_cutoff` underflows to rate 0 inside
        // `rate_from_parts` anyway; testing it here first makes the frozen
        // majority of a cold circuit's events cost one compare, no division.
        let cutoff = self.frozen_cutoff;
        for ((pair, &(ia, ib)), j) in rates
            .chunks_exact_mut(2)
            .zip(&self.endpoints)
            .zip(0_usize..)
        {
            let phi_gap = E * (phi[ia] - phi[ib]);
            let self_energy = self.self_energies[j];
            let df_ab = phi_gap + self_energy;
            let df_ba = self_energy - phi_gap;
            let rate_ab = if df_ab > cutoff {
                0.0
            } else {
                rate_from_parts(df_ab, self.prefactors[j], self.kt, self.inv_kt)
            };
            let rate_ba = if df_ba > cutoff {
                0.0
            } else {
                rate_from_parts(df_ba, self.prefactors[j], self.kt, self.inv_kt)
            };
            pair[0] = rate_ab;
            pair[1] = rate_ba;
            total += rate_ab + rate_ba;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::tunnel_rate;
    use crate::system::{Direction, TunnelSystemBuilder};

    /// Two-island chain with a gate: drain — J0 — i0 — J1 — i1 — J2 — source.
    fn chain(vd: f64, vg: f64) -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let i0 = b.island("i0", 0.0);
        let i1 = b.island("i1", 0.1);
        let drain = b.external("drain", vd);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("J0", drain, i0, 0.7e-18, 80e3);
        b.junction("J1", i0, i1, 0.4e-18, 120e3);
        b.junction("J2", i1, source, 0.6e-18, 90e3);
        b.capacitor("Cg0", gate, i0, 0.3e-18);
        b.capacitor("Cg1", gate, i1, 0.5e-18);
        b.build().unwrap()
    }

    fn assert_tracks(system: &TunnelSystem, live: &LiveState) {
        let exact = system.island_potentials(live.state());
        for (a, b) in live.potentials().iter().zip(&exact) {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1e-9),
                "cached {a} vs exact {b}"
            );
        }
        for event in system.events() {
            let incremental = live.delta_free_energy(system, event);
            let full = system.delta_free_energy(live.state(), event);
            assert!(
                (incremental - full).abs() <= 1e-12 * full.abs().max(1e-25),
                "event {event:?}: incremental {incremental} vs full {full}"
            );
        }
    }

    #[test]
    fn apply_tracks_full_recompute_over_an_event_walk() {
        let system = chain(2e-3, 0.05);
        let mut live = LiveState::new(&system, ChargeState::neutral(2));
        // Deterministic pseudo-random event walk.
        let mut x = 9_u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let event = system.event((x >> 33) as usize % system.event_count());
            live.apply(&system, event);
        }
        assert_tracks(&system, &live);
    }

    #[test]
    fn sync_tracks_drive_and_background_changes() {
        let mut system = chain(0.0, 0.0);
        let mut live = LiveState::new(&system, ChargeState(vec![1, -2]));
        system.set_external_voltage(0, 4e-3).unwrap();
        system.set_external_voltage(2, -0.07).unwrap();
        system.set_background_charge(1, 0.35).unwrap();
        live.sync(&system);
        assert_tracks(&system, &live);
        // A second sync with nothing changed is a no-op.
        let before = live.clone();
        live.sync(&system);
        assert_eq!(before, live);
    }

    #[test]
    fn periodic_refresh_bounds_drift() {
        let system = chain(1e-3, 0.02);
        let mut live = LiveState::new(&system, ChargeState::neutral(2));
        let onto = TunnelEvent {
            junction: 0,
            direction: Direction::AToB,
        };
        // Walk far past the refresh interval; the counter must have wrapped.
        for _ in 0..(REFRESH_INTERVAL + 10) {
            live.apply(&system, onto);
            live.apply(&system, onto.reversed());
        }
        assert!(live.updates_since_refresh < REFRESH_INTERVAL);
        assert_tracks(&system, &live);
    }

    #[test]
    fn rate_context_matches_tunnel_rate() {
        let system = chain(3e-3, 0.04);
        let live = LiveState::new(&system, ChargeState(vec![0, 1]));
        for temperature in [0.0, 0.05, 1.0, 77.0] {
            let ctx = RateContext::new(&system, temperature).unwrap();
            let mut rates = Vec::new();
            let total = ctx.fill_rates(&system, &live, &mut rates);
            assert_eq!(rates.len(), system.event_count());
            let mut expected_total = 0.0;
            for (idx, event) in system.events().into_iter().enumerate() {
                let df = live.delta_free_energy(&system, event);
                let expected =
                    tunnel_rate(df, system.event_resistance(event), temperature).unwrap();
                let got = rates[idx];
                assert!(
                    (got - expected).abs() <= 1e-12 * expected.max(1e-30),
                    "event {idx} at T = {temperature}: {got} vs {expected}"
                );
                assert!(
                    (ctx.event_rate(event.junction, df) - expected).abs()
                        <= 1e-12 * expected.max(1e-30)
                );
                expected_total += got;
            }
            assert!((total - expected_total).abs() <= 1e-9 * expected_total.max(1e-30));
        }
    }

    #[test]
    fn rate_context_rejects_bad_temperature() {
        let system = chain(0.0, 0.0);
        assert!(RateContext::new(&system, -1.0).is_err());
        assert!(RateContext::new(&system, f64::NAN).is_err());
        assert_eq!(RateContext::new(&system, 4.2).unwrap().temperature(), 4.2);
    }
}
