//! The orthodox (first-order, golden-rule) tunnel rate.
//!
//! For a tunnel event with free-energy change `ΔF` across a junction with
//! tunnel resistance `R_t`, the orthodox theory gives
//!
//! ```text
//! Γ(ΔF) = (−ΔF) / (e²·R_t · (1 − exp(ΔF / k_B T)))
//! ```
//!
//! which reduces to `Γ = −ΔF/(e²R_t)` for favourable events at `T → 0`,
//! vanishes for unfavourable events at `T → 0`, and approaches
//! `k_BT/(e²R_t)` at `ΔF → 0`. The characteristic attempt time of a
//! favourable event, `e²R_t/|ΔF|`, is sub-picosecond for typical parameters,
//! which is the paper's point that tunnelling itself is not the speed
//! bottleneck of SET logic.

use crate::error::OrthodoxError;
use se_units::constants::{BOLTZMANN, E};

/// Relative width of the `ΔF → 0` series-expansion window, in units of
/// `k_B·T`.
const SERIES_WINDOW: f64 = 1e-9;

/// Exponent beyond which the Boltzmann suppression is treated as exact zero
/// to avoid overflow in `exp` (crate-visible so the hot-path rate table can
/// precompute the matching ΔF cutoff).
pub(crate) const MAX_EXPONENT: f64 = 500.0;

/// `e^x` as straight-line floating-point arithmetic: `2^n · e^r` with the
/// reduction `x = n·ln 2 + r`, `|r| ≤ ½ln 2`, and `e^r` summed as a
/// degree-12 Taylor polynomial (truncation ≤ 1 ulp over the reduced range,
/// far inside the rate formula's physical tolerance).
///
/// The point of not calling [`f64::exp`]: libm's exp is an opaque scalar
/// call, so a rate fill that needs it — every junction whose ΔF lands in
/// the thermal window — cannot auto-vectorize. This version is pure
/// element-wise arithmetic (the round-to-nearest `n` comes from the
/// add-magic trick, `2^n` from assembling the exponent bits), which LLVM
/// vectorizes across replica lanes; and because the scalar and batched
/// engines evaluate the *same* expression the result is bit-identical on
/// both paths, vectorized or not.
///
/// Only meaningful for `|x| ≤` [`MAX_EXPONENT`] — the callers' Boltzmann
/// window. Outside it the scale factor's exponent bits can wrap: the
/// result is garbage (but safely computed), and every caller selects it
/// away.
#[inline(always)]
pub(crate) fn exp_boltzmann(x: f64) -> f64 {
    const INV_LN2: f64 = std::f64::consts::LOG2_E;
    // 1.5 · 2^52: adding it rounds `x·log2(e)` to the nearest integer in
    // the low mantissa bits (two's complement in the low 32 for |n| < 2^31).
    const MAGIC: f64 = 6_755_399_441_055_744.0;
    // ln 2 split hi/lo so `x − n·ln 2` keeps full precision. Written with
    // the guard digits of the standard Cody–Waite split; the literals
    // round to the intended bit patterns.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    #[allow(clippy::excessive_precision)]
    const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
    let shifted = x * INV_LN2 + MAGIC;
    let n = shifted - MAGIC;
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    let k = shifted.to_bits() as u32 as i32;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Horner over 1/k!, k = 12..0 (each constant folds to the correctly
    // rounded f64 at compile time).
    let p = 1.0 / 479_001_600.0;
    let p = p * r + 1.0 / 39_916_800.0;
    let p = p * r + 1.0 / 3_628_800.0;
    let p = p * r + 1.0 / 362_880.0;
    let p = p * r + 1.0 / 40_320.0;
    let p = p * r + 1.0 / 5_040.0;
    let p = p * r + 1.0 / 720.0;
    let p = p * r + 1.0 / 120.0;
    let p = p * r + 1.0 / 24.0;
    let p = p * r + 1.0 / 6.0;
    let p = p * r + 1.0 / 2.0;
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    #[allow(clippy::cast_sign_loss)]
    let scale = f64::from_bits(((1023_i64 + i64::from(k)) as u64) << 52);
    p * scale
}

/// [`rate_from_parts`] for `kt > 0`, written as straight-line selects so a
/// lane loop over it auto-vectorizes (no early returns, every branch of
/// the cascade computed and the right one chosen). Bitwise the same result:
/// the selected expression is the identical arithmetic, and the select
/// order reproduces the cascade's priorities (series window first, then
/// the two overflow guards, then the thermal denominator).
#[inline(always)]
pub(crate) fn rate_from_parts_branchfree(
    delta_f: f64,
    prefactor: f64,
    kt: f64,
    inv_kt: f64,
) -> f64 {
    debug_assert!(kt > 0.0);
    let x = delta_f * inv_kt;
    let thermal_rate = (-delta_f) * prefactor / (1.0 - exp_boltzmann(x));
    let rate = if x < -MAX_EXPONENT {
        -delta_f * prefactor
    } else {
        thermal_rate
    };
    let rate = if x > MAX_EXPONENT { 0.0 } else { rate };
    let rate = if x.abs() < SERIES_WINDOW {
        kt * prefactor
    } else {
        rate
    };
    rate.max(0.0)
}

/// Orthodox tunnel rate (events per second) for a free-energy change
/// `delta_f` (joule), tunnel resistance `resistance` (ohm) and temperature
/// `temperature` (kelvin).
///
/// # Errors
///
/// Returns [`OrthodoxError::InvalidParameter`] if the resistance is not
/// strictly positive, the temperature is negative, or `delta_f` is not
/// finite.
///
/// # Example
///
/// ```
/// use se_orthodox::tunnel_rate;
///
/// # fn main() -> Result<(), se_orthodox::OrthodoxError> {
/// // A favourable event: 1 meV gain across a 100 kΩ junction at 1 K.
/// let df = -1.602e-22;
/// let rate = tunnel_rate(df, 100e3, 1.0)?;
/// assert!(rate > 1e7);
/// # Ok(())
/// # }
/// ```
pub fn tunnel_rate(delta_f: f64, resistance: f64, temperature: f64) -> Result<f64, OrthodoxError> {
    if resistance <= 0.0 || !resistance.is_finite() {
        return Err(OrthodoxError::InvalidParameter(format!(
            "tunnel resistance must be positive and finite, got {resistance}"
        )));
    }
    if temperature < 0.0 || !temperature.is_finite() {
        return Err(OrthodoxError::InvalidParameter(format!(
            "temperature must be non-negative and finite, got {temperature}"
        )));
    }
    if !delta_f.is_finite() {
        return Err(OrthodoxError::InvalidParameter(format!(
            "free-energy change must be finite, got {delta_f}"
        )));
    }

    if temperature == 0.0 {
        return Ok(tunnel_rate_zero_temperature(delta_f, resistance));
    }
    let kt = BOLTZMANN * temperature;
    Ok(rate_from_parts(
        delta_f,
        1.0 / (E * E * resistance),
        kt,
        1.0 / kt,
    ))
}

/// The orthodox rate formula for a precomputed junction prefactor
/// `1/(e²·R_t)`, thermal energy `kt = k_B·T` and its reciprocal — the
/// infallible, inline core shared by [`tunnel_rate`] and the hot-path rate
/// table of [`crate::live::RateContext`], so every engine evaluates exactly
/// the same limits (series window at `ΔF → 0`, hard zero beyond the
/// Boltzmann overflow exponent). The reciprocal is taken as a parameter so
/// hot loops can hoist the division out of the per-event path.
#[inline]
pub(crate) fn rate_from_parts(delta_f: f64, prefactor: f64, kt: f64, inv_kt: f64) -> f64 {
    if kt == 0.0 {
        return if delta_f < 0.0 {
            -delta_f * prefactor
        } else {
            0.0
        };
    }
    let x = delta_f * inv_kt;
    let rate = if x.abs() < SERIES_WINDOW {
        // ΔF → 0 limit: Γ → kT / (e² R).
        kt * prefactor
    } else if x > MAX_EXPONENT {
        // Deep Boltzmann suppression: numerically zero.
        0.0
    } else if x < -MAX_EXPONENT {
        // Strongly favourable: denominator is 1.
        -delta_f * prefactor
    } else {
        (-delta_f) * prefactor / (1.0 - exp_boltzmann(x))
    };
    rate.max(0.0)
}

/// Zero-temperature limit of the orthodox rate: `−ΔF/(e²R)` for favourable
/// events, `0` otherwise.
#[must_use]
pub fn tunnel_rate_zero_temperature(delta_f: f64, resistance: f64) -> f64 {
    if delta_f < 0.0 {
        -delta_f / (E * E * resistance)
    } else {
        0.0
    }
}

/// Intrinsic tunnelling attempt time `e²·R_t/|ΔF|` in seconds for a
/// favourable event — the quantity behind the paper's statement that
/// tunnelling is a sub-picosecond process.
///
/// Returns `f64::INFINITY` for `ΔF >= 0`.
#[must_use]
pub fn intrinsic_tunnel_time(delta_f: f64, resistance: f64) -> f64 {
    if delta_f >= 0.0 {
        f64::INFINITY
    } else {
        E * E * resistance / (-delta_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const R: f64 = 100e3;

    #[test]
    fn rejects_invalid_arguments() {
        assert!(tunnel_rate(-1e-22, 0.0, 1.0).is_err());
        assert!(tunnel_rate(-1e-22, -1.0, 1.0).is_err());
        assert!(tunnel_rate(-1e-22, R, -1.0).is_err());
        assert!(tunnel_rate(f64::NAN, R, 1.0).is_err());
    }

    #[test]
    fn favourable_rate_at_low_temperature_is_linear_in_energy() {
        let df = -1e-21;
        let rate = tunnel_rate(df, R, 0.001).unwrap();
        let expected = -df / (E * E * R);
        assert!((rate - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn unfavourable_rate_is_boltzmann_suppressed() {
        let df = 1e-21; // ~6 meV
        let t = 1.0;
        let rate = tunnel_rate(df, R, t).unwrap();
        let favourable = tunnel_rate(-df, R, t).unwrap();
        let ratio = rate / favourable;
        let boltzmann = (-df / (BOLTZMANN * t)).exp();
        assert!(
            (ratio - boltzmann).abs() / boltzmann < 1e-6,
            "detailed balance violated: ratio {ratio}, boltzmann {boltzmann}"
        );
    }

    #[test]
    fn zero_energy_limit_is_thermal() {
        let t = 4.2;
        let rate = tunnel_rate(0.0, R, t).unwrap();
        let expected = BOLTZMANN * t / (E * E * R);
        assert!((rate - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn zero_temperature_limits() {
        assert_eq!(tunnel_rate(1e-22, R, 0.0).unwrap(), 0.0);
        let df = -2e-21;
        let rate = tunnel_rate(df, R, 0.0).unwrap();
        assert!((rate - (-df) / (E * E * R)).abs() < 1e-6 * rate);
        assert_eq!(tunnel_rate_zero_temperature(0.0, R), 0.0);
    }

    #[test]
    fn extreme_suppression_does_not_overflow() {
        // 1 eV uphill at 1 mK: astronomically suppressed but must return 0.
        let rate = tunnel_rate(1.6e-19, R, 0.001).unwrap();
        assert_eq!(rate, 0.0);
        // 1 eV downhill at 1 mK: plain linear rate.
        let rate = tunnel_rate(-1.6e-19, R, 0.001).unwrap();
        assert!(rate.is_finite() && rate > 0.0);
    }

    #[test]
    fn intrinsic_tunnel_time_is_sub_picosecond_for_typical_parameters() {
        // ~1 charging energy (30 meV) across 100 kΩ.
        let df = -4.8e-21 * 10.0;
        let tau = intrinsic_tunnel_time(df, R);
        assert!(tau < 1e-12, "tunnel time {tau} s should be sub-picosecond");
        assert_eq!(intrinsic_tunnel_time(1e-21, R), f64::INFINITY);
    }

    proptest! {
        /// Rates are always non-negative and finite.
        #[test]
        fn prop_rates_are_non_negative(
            df_mev in -100.0_f64..100.0,
            r_kohm in 26.0_f64..10_000.0,
            t in 0.0_f64..300.0,
        ) {
            let df = df_mev * 1e-3 * E;
            let rate = tunnel_rate(df, r_kohm * 1e3, t).unwrap();
            prop_assert!(rate >= 0.0);
            prop_assert!(rate.is_finite());
        }

        /// Detailed balance: Γ(ΔF)/Γ(−ΔF) = exp(−ΔF/kT) whenever both rates
        /// are representable.
        #[test]
        fn prop_detailed_balance(
            df_mev in 0.01_f64..5.0,
            t in 0.5_f64..300.0,
        ) {
            let df = df_mev * 1e-3 * E;
            let up = tunnel_rate(df, R, t).unwrap();
            let down = tunnel_rate(-df, R, t).unwrap();
            prop_assume!(up > 0.0 && down > 0.0);
            let ratio = up / down;
            let expected = (-df / (BOLTZMANN * t)).exp();
            prop_assume!(expected > 1e-290);
            prop_assert!((ratio - expected).abs() / expected < 1e-6);
        }

        /// The rate is monotonically non-increasing in ΔF (more uphill =
        /// slower).
        #[test]
        fn prop_rate_monotone_in_delta_f(
            df_mev in -10.0_f64..10.0,
            t in 0.1_f64..300.0,
        ) {
            let df = df_mev * 1e-3 * E;
            let rate = tunnel_rate(df, R, t).unwrap();
            let rate_higher = tunnel_rate(df + 1e-3 * E, R, t).unwrap();
            prop_assert!(rate_higher <= rate * (1.0 + 1e-9));
        }
    }
}
