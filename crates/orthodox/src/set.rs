//! Exact (master-equation) model of the canonical three-terminal
//! single-electron transistor.
//!
//! The SET of the paper is a metallic island connected to drain and source
//! leads through two tunnel junctions and to a gate through a capacitor.
//! For a *single* island the stationary master equation over the number of
//! excess electrons `n` is a birth–death chain, so the occupation
//! probabilities follow from the detailed-balance-like recursion
//! `p(n+1)/p(n) = Γ₊(n)/Γ₋(n+1)` and the drain current is
//! `I = e·Σₙ p(n)·(Γ_d→(n) − Γ_d←(n))`.
//!
//! This is the reference characteristic used throughout the experiments: it
//! shows the periodic Id–Vg oscillation (period `e/C_g`), the fact that a
//! background charge shifts only the *phase* of that oscillation, the
//! Coulomb staircase and diamonds, the temperature washout and the voltage
//! gain `C_g/C_d`.

use crate::error::OrthodoxError;
use crate::rates::tunnel_rate;
use se_units::constants::{BOLTZMANN, E};

/// Shared grid construction with the crate's error type.
fn grid(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, OrthodoxError> {
    se_engine::linspace(start, stop, points)
        .map_err(|e| OrthodoxError::InvalidParameter(e.to_string()))
}

/// Exact orthodox model of a single SET.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleElectronTransistor {
    c_gate: f64,
    c_source: f64,
    c_drain: f64,
    r_source: f64,
    r_drain: f64,
    /// Half-width of the charge-state window used by the master equation.
    window: i64,
}

/// One simulated bias point of a SET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasPoint {
    /// Drain-source voltage in volt.
    pub vds: f64,
    /// Gate voltage in volt.
    pub vgs: f64,
    /// Drain current in ampere.
    pub current: f64,
}

impl SingleElectronTransistor {
    /// Creates a SET with explicit junction parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if any capacitance or
    /// resistance is not strictly positive and finite.
    pub fn new(
        c_gate: f64,
        c_source: f64,
        c_drain: f64,
        r_source: f64,
        r_drain: f64,
    ) -> Result<Self, OrthodoxError> {
        for (name, value) in [
            ("gate capacitance", c_gate),
            ("source capacitance", c_source),
            ("drain capacitance", c_drain),
            ("source resistance", r_source),
            ("drain resistance", r_drain),
        ] {
            if value <= 0.0 || !value.is_finite() {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {value}"
                )));
            }
        }
        Ok(SingleElectronTransistor {
            c_gate,
            c_source,
            c_drain,
            r_source,
            r_drain,
            window: 8,
        })
    }

    /// Creates a SET with symmetric junctions.
    ///
    /// # Errors
    ///
    /// See [`SingleElectronTransistor::new`].
    pub fn symmetric(c_gate: f64, c_junction: f64, r_junction: f64) -> Result<Self, OrthodoxError> {
        SingleElectronTransistor::new(c_gate, c_junction, c_junction, r_junction, r_junction)
    }

    /// Sets the half-width of the charge-state window (default 8). Larger
    /// windows are needed at high temperature or large bias.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if `window` is zero or
    /// larger than 512.
    pub fn with_window(mut self, window: i64) -> Result<Self, OrthodoxError> {
        if !(1..=512).contains(&window) {
            return Err(OrthodoxError::InvalidParameter(format!(
                "charge window must lie in [1, 512], got {window}"
            )));
        }
        self.window = window;
        Ok(self)
    }

    /// Total island capacitance `CΣ`.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.c_gate + self.c_source + self.c_drain
    }

    /// Single-electron charging energy `e²/2CΣ` in joule.
    #[must_use]
    pub fn charging_energy(&self) -> f64 {
        E * E / (2.0 * self.total_capacitance())
    }

    /// Gate-voltage period `e/C_g` of the Coulomb oscillations.
    #[must_use]
    pub fn gate_period(&self) -> f64 {
        E / self.c_gate
    }

    /// Maximum voltage gain of the SET used as an amplifier / logic element:
    /// `C_g / C_d` (the paper's "voltage gain is given by the ratio of gate
    /// capacitance to junction capacitance").
    #[must_use]
    pub fn voltage_gain(&self) -> f64 {
        self.c_gate / self.c_drain
    }

    /// Maximum operating temperature (kelvin) at which the blockade is still
    /// visible, requiring `E_C ≥ margin·k_B·T`.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not strictly positive.
    #[must_use]
    pub fn max_operating_temperature(&self, margin: f64) -> f64 {
        assert!(margin > 0.0, "margin must be positive");
        self.charging_energy() / (margin * BOLTZMANN)
    }

    /// Free-energy change of adding one electron to the island through the
    /// *drain* junction when the island already holds `n` excess electrons.
    fn delta_f_drain_in(&self, n: i64, vds: f64, vgs: f64, q0: f64) -> f64 {
        self.delta_f_in(n, vds, vgs, q0, self.c_source, vds)
    }

    /// Free-energy change of adding one electron through the *source*
    /// junction (source grounded).
    fn delta_f_source_in(&self, n: i64, vds: f64, vgs: f64, q0: f64) -> f64 {
        self.delta_f_in(n, vds, vgs, q0, self.c_drain, 0.0)
    }

    /// Common expression: electron enters the island from a lead at
    /// potential `v_lead`; `c_other` is the capacitance of the *other*
    /// junction (the one not tunnelled through).
    ///
    /// ΔF = (e/CΣ)·[e/2 + (n·e − q0·e) − C_g·(V_g − V_lead) − C_other·(V_other − V_lead)]
    /// which follows from the general endpoint formula of
    /// [`crate::system::TunnelSystem`]; here it is written out explicitly for
    /// speed and testability.
    #[allow(clippy::too_many_arguments)]
    fn delta_f_in(&self, n: i64, vds: f64, vgs: f64, q0: f64, c_other: f64, v_lead: f64) -> f64 {
        let c_sigma = self.total_capacitance();
        let q_island = -E * n as f64 + E * q0;
        // Island potential before the event.
        let phi =
            (q_island + self.c_drain * vds + self.c_source * 0.0 + self.c_gate * vgs) / c_sigma;
        // Electron moves from the lead (potential v_lead) onto the island.
        let _ = c_other;
        E * (v_lead - phi) + E * E / (2.0 * c_sigma)
    }

    /// Drain current (ampere) at the given bias, gate voltage, background
    /// charge `q0` (units of `e`) and temperature (kelvin).
    ///
    /// Positive current flows from the drain terminal through the device to
    /// the grounded source when `vds > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] for a negative or
    /// non-finite temperature or non-finite bias values.
    pub fn current(
        &self,
        vds: f64,
        vgs: f64,
        q0: f64,
        temperature: f64,
    ) -> Result<f64, OrthodoxError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        if !vds.is_finite() || !vgs.is_finite() || !q0.is_finite() {
            return Err(OrthodoxError::InvalidParameter(
                "bias voltages and background charge must be finite".into(),
            ));
        }

        // Centre the charge window on the electrostatically preferred n.
        let gate_charge = (self.c_gate * vgs + self.c_drain * vds) / E + q0;
        let n_center = gate_charge.round() as i64;
        let lo = n_center - self.window;
        let hi = n_center + self.window;
        let states = (hi - lo + 1) as usize;

        // Rates per state.
        let mut rate_in_drain = vec![0.0; states];
        let mut rate_out_drain = vec![0.0; states];
        let mut rate_in_source = vec![0.0; states];
        let mut rate_out_source = vec![0.0; states];
        for (idx, n) in (lo..=hi).enumerate() {
            let df_d_in = self.delta_f_drain_in(n, vds, vgs, q0);
            let df_s_in = self.delta_f_source_in(n, vds, vgs, q0);
            rate_in_drain[idx] = tunnel_rate(df_d_in, self.r_drain, temperature)?;
            rate_in_source[idx] = tunnel_rate(df_s_in, self.r_source, temperature)?;
            // Out-rates: electron leaves island with n electrons; this is the
            // reverse of the in-event at n-1, so compute directly from the
            // free-energy of the reverse process.
            let df_d_out = -self.delta_f_drain_in(n - 1, vds, vgs, q0);
            let df_s_out = -self.delta_f_source_in(n - 1, vds, vgs, q0);
            rate_out_drain[idx] = tunnel_rate(df_d_out, self.r_drain, temperature)?;
            rate_out_source[idx] = tunnel_rate(df_s_out, self.r_source, temperature)?;
        }

        // Stationary distribution of the birth-death chain.
        let mut log_p = vec![0.0_f64; states];
        for idx in 1..states {
            let gain = rate_in_drain[idx - 1] + rate_in_source[idx - 1];
            let loss = rate_out_drain[idx] + rate_out_source[idx];
            let ratio = if gain > 0.0 && loss > 0.0 {
                (gain / loss).ln()
            } else if gain == 0.0 {
                -700.0
            } else {
                700.0
            };
            log_p[idx] = log_p[idx - 1] + ratio;
        }
        let max_log = log_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = log_p.iter().map(|&l| (l - max_log).exp()).collect();
        let norm: f64 = weights.iter().sum();

        // Drain current: electrons arriving at the drain minus leaving it.
        let mut current = 0.0;
        for idx in 0..states {
            let p = weights[idx] / norm;
            current += p * (rate_out_drain[idx] - rate_in_drain[idx]);
        }
        Ok(E * current)
    }

    /// Sweeps the gate voltage at fixed `vds`, returning one [`BiasPoint`]
    /// per sample. Runs through the shared parallel
    /// [`se_engine::SweepRunner`], fanning bias points across all cores;
    /// descending ranges (`vg_start > vg_stop`) are swept in that order.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] if `points < 2` or the
    /// sweep range is degenerate, or propagates bias-point errors.
    pub fn gate_sweep(
        &self,
        vds: f64,
        vg_start: f64,
        vg_stop: f64,
        points: usize,
        q0: f64,
        temperature: f64,
    ) -> Result<Vec<BiasPoint>, OrthodoxError> {
        let values = grid(vg_start, vg_stop, points)?;
        se_engine::SweepRunner::new().map_points(values.len(), |i, _seed| {
            let vgs = values[i];
            Ok(BiasPoint {
                vds,
                vgs,
                current: self.current(vds, vgs, q0, temperature)?,
            })
        })
    }

    /// Sweeps the drain voltage at fixed `vgs` (the Coulomb-staircase /
    /// blockade curve), in parallel over bias points. A descending range
    /// (`vd_start > vd_stop`) runs a reverse-bias sweep.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleElectronTransistor::gate_sweep`].
    pub fn drain_sweep(
        &self,
        vgs: f64,
        vd_start: f64,
        vd_stop: f64,
        points: usize,
        q0: f64,
        temperature: f64,
    ) -> Result<Vec<BiasPoint>, OrthodoxError> {
        let values = grid(vd_start, vd_stop, points)?;
        se_engine::SweepRunner::new().map_points(values.len(), |i, _seed| {
            let vds = values[i];
            Ok(BiasPoint {
                vds,
                vgs,
                current: self.current(vds, vgs, q0, temperature)?,
            })
        })
    }

    /// Modulation depth `(I_max − I_min)/(I_max + I_min)` of the Coulomb
    /// oscillation over one gate period at the given bias and temperature —
    /// the quantity that washes out as `k_BT` approaches the charging
    /// energy (experiment E4).
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying gate sweep.
    pub fn modulation_depth(
        &self,
        vds: f64,
        q0: f64,
        temperature: f64,
    ) -> Result<f64, OrthodoxError> {
        let period = self.gate_period();
        let sweep = self.gate_sweep(vds, 0.0, period, 41, q0, temperature)?;
        let currents: Vec<f64> = sweep.iter().map(|p| p.current.abs()).collect();
        let max = currents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = currents.iter().cloned().fold(f64::INFINITY, f64::min);
        if max + min == 0.0 {
            return Ok(0.0);
        }
        Ok((max - min) / (max + min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_set() -> SingleElectronTransistor {
        SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap()
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(SingleElectronTransistor::new(0.0, 1e-18, 1e-18, 1e5, 1e5).is_err());
        assert!(SingleElectronTransistor::new(1e-18, -1e-18, 1e-18, 1e5, 1e5).is_err());
        assert!(SingleElectronTransistor::new(1e-18, 1e-18, 1e-18, 0.0, 1e5).is_err());
        assert!(reference_set().with_window(0).is_err());
        assert!(reference_set().with_window(1000).is_err());
        assert!(reference_set().with_window(16).is_ok());
    }

    #[test]
    fn derived_quantities() {
        let set = reference_set();
        assert!((set.total_capacitance() - 2e-18).abs() < 1e-30);
        assert!((set.gate_period() - E / 1e-18).abs() < 1e-6);
        assert!((set.voltage_gain() - 2.0).abs() < 1e-12);
        assert!(set.charging_energy() > 0.0);
        assert!(set.max_operating_temperature(10.0) > 0.0);
    }

    #[test]
    fn current_validates_inputs() {
        let set = reference_set();
        assert!(set.current(1e-3, 0.0, 0.0, -1.0).is_err());
        assert!(set.current(f64::NAN, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn blockade_suppresses_current_at_low_bias() {
        let set = reference_set();
        let blocked = set.current(1e-4, 0.0, 0.0, 0.05).unwrap();
        let open = set
            .current(1e-4, set.gate_period() / 2.0, 0.0, 0.05)
            .unwrap();
        assert!(open.abs() > 1e3 * blocked.abs());
    }

    #[test]
    fn current_is_odd_in_drain_bias_at_degeneracy() {
        let set = reference_set();
        let vg = set.gate_period() / 2.0;
        let plus = set.current(2e-4, vg, 0.0, 0.1).unwrap();
        let minus = set.current(-2e-4, vg, 0.0, 0.1).unwrap();
        assert!(plus > 0.0);
        assert!(minus < 0.0);
        assert!((plus + minus).abs() < 0.05 * plus.abs());
    }

    #[test]
    fn oscillation_period_is_e_over_cg() {
        let set = reference_set();
        let period = set.gate_period();
        let i1 = set.current(1e-4, 0.3 * period, 0.0, 0.1).unwrap();
        let i2 = set.current(1e-4, 1.3 * period, 0.0, 0.1).unwrap();
        assert!(
            (i1 - i2).abs() < 0.02 * i1.abs().max(1e-15),
            "current should be periodic: {i1} vs {i2}"
        );
    }

    #[test]
    fn background_charge_shifts_phase_only() {
        // Shifting q0 by 0.3 e is equivalent to shifting Vg by 0.3 periods.
        let set = reference_set();
        let period = set.gate_period();
        let q0 = 0.3;
        for frac in [0.1, 0.35, 0.6, 0.85] {
            let with_q0 = set.current(1e-4, frac * period, q0, 0.1).unwrap();
            let shifted = set.current(1e-4, (frac + q0) * period, 0.0, 0.1).unwrap();
            assert!(
                (with_q0 - shifted).abs() < 0.03 * with_q0.abs().max(1e-15),
                "phase-shift equivalence failed at {frac}: {with_q0} vs {shifted}"
            );
        }
    }

    #[test]
    fn high_temperature_washes_out_oscillations() {
        // Charging energy of the reference SET is ~40 meV, so oscillations
        // are deep at 4 K and largely washed out at room temperature where
        // k_BT ≈ 26 meV.
        let set = reference_set();
        let cold = set.modulation_depth(1e-4, 0.0, 4.0).unwrap();
        let hot = set.modulation_depth(1e-4, 0.0, 300.0).unwrap();
        assert!(cold > 0.9, "cold modulation should be deep, got {cold}");
        assert!(hot < 0.7, "hot modulation should be washed out, got {hot}");
        assert!(cold > hot);
    }

    #[test]
    fn staircase_current_increases_with_bias() {
        let set = reference_set();
        let sweep = set.drain_sweep(0.0, 0.0, 0.1, 21, 0.0, 0.1).unwrap();
        let first = sweep.first().unwrap().current;
        let last = sweep.last().unwrap().current;
        assert!(last > first);
        assert!(last > 0.0);
        // Currents must be monotically non-decreasing within tolerance.
        for pair in sweep.windows(2) {
            assert!(pair[1].current >= pair[0].current - 1e-12);
        }
    }

    #[test]
    fn sweep_validation() {
        let set = reference_set();
        assert!(set.gate_sweep(1e-4, 0.0, 1.0, 1, 0.0, 1.0).is_err());
        assert!(set.drain_sweep(0.0, 0.0, 0.0, 10, 0.0, 1.0).is_err());
    }

    #[test]
    fn descending_sweeps_run_reverse_bias() {
        // A descending drain sweep measures the reverse-bias branch in the
        // order requested — no caller-side reversal.
        let set = reference_set();
        let sweep = set.drain_sweep(0.0, 0.05, -0.05, 11, 0.0, 0.1).unwrap();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0].vds, 0.05);
        assert_eq!(sweep[10].vds, -0.05);
        assert!(sweep[0].current > 0.0);
        assert!(sweep[10].current < 0.0);

        // Descending gate sweeps mirror the ascending characteristic.
        let period = set.gate_period();
        let down = set.gate_sweep(1e-4, period, 0.0, 21, 0.0, 1.0).unwrap();
        let up = set.gate_sweep(1e-4, 0.0, period, 21, 0.0, 1.0).unwrap();
        for (d, u) in down.iter().zip(up.iter().rev()) {
            assert!((d.vgs - u.vgs).abs() < 1e-9 * period);
            let scale = d.current.abs().max(u.current.abs()).max(1e-18);
            assert!((d.current - u.current).abs() < 1e-6 * scale);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A background charge of q0 is exactly equivalent to a gate-voltage
        /// shift of q0·(e/C_g): the characteristic keeps its period and
        /// amplitude and only its phase moves. (This is the paper's key
        /// claim about background charges.)
        #[test]
        fn prop_background_charge_is_a_pure_phase_shift(
            q0 in -1.0_f64..1.0,
            vg_frac in 0.0_f64..1.0,
            temp in 0.1_f64..10.0,
        ) {
            let set = reference_set();
            let period = set.gate_period();
            let vg = vg_frac * period;
            let with_q0 = set.current(1e-4, vg, q0, temp).unwrap();
            let shifted = set.current(1e-4, vg + q0 * period, 0.0, temp).unwrap();
            let scale = with_q0.abs().max(shifted.abs()).max(1e-18);
            prop_assert!((with_q0 - shifted).abs() < 1e-6 * scale);
        }

        /// Current at zero bias is (numerically) zero for any gate voltage —
        /// no perpetual-motion current.
        #[test]
        fn prop_no_current_at_zero_bias(vg_frac in 0.0_f64..1.0, q0 in -0.5_f64..0.5) {
            let set = reference_set();
            let vg = vg_frac * set.gate_period();
            let i = set.current(0.0, vg, q0, 1.0).unwrap();
            // Compare against the scale of the on-state current at 1 mV.
            let scale = set.current(1e-3, set.gate_period() / 2.0, 0.0, 1.0).unwrap().abs();
            prop_assert!(i.abs() < 1e-6 * scale.max(1e-12));
        }
    }
}
