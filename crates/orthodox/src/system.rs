//! The tunnel-system electrostatics: islands, external electrodes,
//! capacitors, tunnel junctions, and the free-energy change of tunnel events.
//!
//! # Physics
//!
//! Let the circuit consist of *islands* (metallic nodes whose charge is an
//! integer number of electrons plus a background offset) and *external*
//! nodes whose potentials are fixed by voltage sources. With the Maxwell
//! capacitance matrix partitioned into island–island (`C_II`) and
//! island–external (`C_IE`) blocks, the island potentials for island charge
//! vector `q` are
//!
//! ```text
//! φ_I = C_II⁻¹ · (q + s),     s_i = Σ_k C(i,k) · V_k
//! ```
//!
//! where `C(i,k)` is the coupling capacitance between island `i` and
//! external node `k`. The free energy (the thermodynamic potential
//! appropriate for fixed source voltages) is `F = ½ (q+s)ᵀ C_II⁻¹ (q+s)`
//! up to state-independent terms, and the change caused by one electron
//! tunnelling from endpoint `a` to endpoint `b` is
//!
//! ```text
//! ΔF = e·(φ_a − φ_b) + (e²/2)·(K_aa + K_bb − 2·K_ab)
//! ```
//!
//! with `K = C_II⁻¹` and `K` entries taken as zero for external endpoints
//! (their potential is pinned). The first term contains the work done by
//! the sources when the tunnelling electron enters or leaves an electrode;
//! the second is the self-charging cost. This is the standard orthodox
//! result used by Monte-Carlo simulators of the SIMON family.

use crate::error::OrthodoxError;
use se_numeric::{LuDecomposition, Matrix, NumericError};
use se_units::constants::E;

/// Relative negligibility threshold of the event-coupling table: a coupling
/// below this fraction of the system's strongest coupling is left off the
/// strong lists (see [`TunnelSystem::junction_strong_couplings`]). The
/// resulting worst-case ΔF drift of a skipped event between two exact
/// refreshes — `REFRESH_INTERVAL · threshold · g_max`, doubled for safety —
/// becomes the [`TunnelSystem::coupling_margin`] stability guard, a few kT
/// at millikelvin scales versus the thousands of kT of slack a deep-frozen
/// event has.
const COUPLING_THRESHOLD_REL: f64 = 1e-7;

/// One end of a capacitive branch: either a charge-quantised island or an
/// external, voltage-driven electrode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Island by index.
    Island(usize),
    /// External electrode by index.
    External(usize),
}

/// A tunnel junction between two endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Junction {
    /// Human-readable name (netlist element name).
    pub name: String,
    /// First endpoint (the "a" side).
    pub a: Endpoint,
    /// Second endpoint (the "b" side).
    pub b: Endpoint,
    /// Junction capacitance in farad.
    pub capacitance: f64,
    /// Tunnel resistance in ohm.
    pub resistance: f64,
}

/// A purely capacitive branch (gate or coupling capacitor).
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    /// Human-readable name (netlist element name).
    pub name: String,
    /// First endpoint.
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
    /// Capacitance in farad.
    pub capacitance: f64,
}

/// The charge state of a tunnel system: the number of *extra electrons* on
/// each island.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChargeState(pub Vec<i64>);

impl ChargeState {
    /// The state with zero extra electrons on every island.
    #[must_use]
    pub fn neutral(islands: usize) -> Self {
        ChargeState(vec![0; islands])
    }

    /// Number of extra electrons on island `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn electrons(&self, i: usize) -> i64 {
        self.0[i]
    }

    /// Total number of extra electrons across all islands.
    #[must_use]
    pub fn total_electrons(&self) -> i64 {
        self.0.iter().sum()
    }
}

/// Direction of a tunnel event across a junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// An electron tunnels from endpoint `a` to endpoint `b`.
    AToB,
    /// An electron tunnels from endpoint `b` to endpoint `a`.
    BToA,
}

/// A candidate tunnel event: a junction and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TunnelEvent {
    /// Index of the junction in [`TunnelSystem::junctions`].
    pub junction: usize,
    /// Tunnelling direction.
    pub direction: Direction,
}

impl TunnelEvent {
    /// Returns the event in the opposite direction across the same junction.
    #[must_use]
    pub fn reversed(self) -> Self {
        TunnelEvent {
            junction: self.junction,
            direction: match self.direction {
                Direction::AToB => Direction::BToA,
                Direction::BToA => Direction::AToB,
            },
        }
    }
}

/// Builder for a [`TunnelSystem`].
#[derive(Debug, Clone, Default)]
pub struct TunnelSystemBuilder {
    island_names: Vec<String>,
    background_charges: Vec<f64>,
    external_names: Vec<String>,
    external_voltages: Vec<f64>,
    junctions: Vec<Junction>,
    capacitors: Vec<Capacitor>,
}

impl TunnelSystemBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an island and returns its endpoint handle.
    ///
    /// `background_charge` is the static offset charge in units of the
    /// elementary charge `e` (the `q0` of the paper's random-background-
    /// charge discussion).
    pub fn island(&mut self, name: impl Into<String>, background_charge: f64) -> Endpoint {
        self.island_names.push(name.into());
        self.background_charges.push(background_charge);
        Endpoint::Island(self.island_names.len() - 1)
    }

    /// Adds an external electrode at the given voltage and returns its
    /// endpoint handle.
    pub fn external(&mut self, name: impl Into<String>, voltage: f64) -> Endpoint {
        self.external_names.push(name.into());
        self.external_voltages.push(voltage);
        Endpoint::External(self.external_names.len() - 1)
    }

    /// Adds a tunnel junction between two endpoints.
    pub fn junction(
        &mut self,
        name: impl Into<String>,
        a: Endpoint,
        b: Endpoint,
        capacitance: f64,
        resistance: f64,
    ) -> &mut Self {
        self.junctions.push(Junction {
            name: name.into(),
            a,
            b,
            capacitance,
            resistance,
        });
        self
    }

    /// Adds a capacitor between two endpoints.
    pub fn capacitor(
        &mut self,
        name: impl Into<String>,
        a: Endpoint,
        b: Endpoint,
        capacitance: f64,
    ) -> &mut Self {
        self.capacitors.push(Capacitor {
            name: name.into(),
            a,
            b,
            capacitance,
        });
        self
    }

    /// Validates the description and builds the [`TunnelSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::InvalidParameter`] for non-positive
    /// capacitances/resistances, missing junctions or out-of-range endpoint
    /// indices, and [`OrthodoxError::SingularCapacitanceMatrix`] if an island
    /// has no capacitive connection (its potential would be undefined).
    pub fn build(&self) -> Result<TunnelSystem, OrthodoxError> {
        if self.island_names.is_empty() {
            return Err(OrthodoxError::InvalidParameter(
                "a tunnel system needs at least one island".into(),
            ));
        }
        if self.junctions.is_empty() {
            return Err(OrthodoxError::InvalidParameter(
                "a tunnel system needs at least one tunnel junction".into(),
            ));
        }
        let n_islands = self.island_names.len();
        let n_externals = self.external_names.len();
        let check_endpoint = |e: Endpoint, context: &str| -> Result<(), OrthodoxError> {
            match e {
                Endpoint::Island(i) if i >= n_islands => Err(OrthodoxError::UnknownNode(format!(
                    "{context} references island {i}, but only {n_islands} islands exist"
                ))),
                Endpoint::External(k) if k >= n_externals => Err(OrthodoxError::UnknownNode(
                    format!("{context} references external node {k}, but only {n_externals} exist"),
                )),
                _ => Ok(()),
            }
        };

        for j in &self.junctions {
            check_endpoint(j.a, &j.name)?;
            check_endpoint(j.b, &j.name)?;
            if j.capacitance <= 0.0 || !j.capacitance.is_finite() {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "junction `{}` capacitance must be positive, got {}",
                    j.name, j.capacitance
                )));
            }
            if j.resistance <= 0.0 || !j.resistance.is_finite() {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "junction `{}` resistance must be positive, got {}",
                    j.name, j.resistance
                )));
            }
            if j.a == j.b {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "junction `{}` connects an endpoint to itself",
                    j.name
                )));
            }
        }
        for c in &self.capacitors {
            check_endpoint(c.a, &c.name)?;
            check_endpoint(c.b, &c.name)?;
            if c.capacitance <= 0.0 || !c.capacitance.is_finite() {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "capacitor `{}` capacitance must be positive, got {}",
                    c.name, c.capacitance
                )));
            }
            if c.a == c.b {
                return Err(OrthodoxError::InvalidParameter(format!(
                    "capacitor `{}` connects an endpoint to itself",
                    c.name
                )));
            }
        }

        // Assemble the island-island Maxwell matrix and the island-external
        // coupling list.
        let mut c_ii = Matrix::zeros(n_islands, n_islands);
        let mut coupling: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_islands];

        let mut add_branch = |a: Endpoint, b: Endpoint, c: f64| match (a, b) {
            (Endpoint::Island(i), Endpoint::Island(j)) => {
                c_ii.add_at(i, i, c);
                c_ii.add_at(j, j, c);
                c_ii.add_at(i, j, -c);
                c_ii.add_at(j, i, -c);
            }
            (Endpoint::Island(i), Endpoint::External(k))
            | (Endpoint::External(k), Endpoint::Island(i)) => {
                c_ii.add_at(i, i, c);
                coupling[i].push((k, c));
            }
            (Endpoint::External(_), Endpoint::External(_)) => {
                // Purely external branches do not influence island
                // electrostatics; they matter only for source currents.
            }
        };
        for j in &self.junctions {
            add_branch(j.a, j.b, j.capacitance);
        }
        for c in &self.capacitors {
            add_branch(c.a, c.b, c.capacitance);
        }

        for i in 0..n_islands {
            if c_ii[(i, i)] <= 0.0 {
                return Err(OrthodoxError::SingularCapacitanceMatrix(format!(
                    "island `{}` has no capacitive connection",
                    self.island_names[i]
                )));
            }
        }

        let lu = LuDecomposition::new(&c_ii).map_err(|err| match err {
            // Elimination columns are never permuted, so the pivot column is
            // the island whose row became linearly dependent — name it.
            NumericError::SingularMatrix { pivot } => {
                OrthodoxError::SingularCapacitanceMatrix(format!(
                    "island capacitance matrix is singular at elimination column {pivot} \
                     (island `{}`): its capacitive couplings are linearly dependent on the \
                     other islands' — typically a group of islands connected only to each \
                     other with no path to any external electrode",
                    self.island_names[pivot]
                ))
            }
            other => OrthodoxError::Numeric(other),
        })?;
        let inverse = lu.inverse()?;

        // Per-junction self-charging constant K_aa + K_bb − 2·K_ab (external
        // endpoints contribute zero), the state-independent half of ΔF.
        let k_entry = |e: Endpoint, f: Endpoint| match (e, f) {
            (Endpoint::Island(i), Endpoint::Island(j)) => inverse[(i, j)],
            _ => 0.0,
        };
        let self_charging = self
            .junctions
            .iter()
            .map(|j| k_entry(j.a, j.a) + k_entry(j.b, j.b) - 2.0 * k_entry(j.a, j.b))
            .collect();

        // Per-junction potential response of one a→b tunnel event:
        // Δφ = e·K[:,a] − e·K[:,b] (island endpoints only). Applying an
        // event to cached potentials is then a single ±axpy of this column.
        let event_response: Vec<Vec<f64>> = self
            .junctions
            .iter()
            .map(|j| {
                (0..n_islands)
                    .map(|t| {
                        let col = |e: Endpoint| match e {
                            Endpoint::Island(i) => inverse[(t, i)],
                            Endpoint::External(_) => 0.0,
                        };
                        E * (col(j.a) - col(j.b))
                    })
                    .collect()
            })
            .collect();

        // Event-coupling table: orthodox ΔF is linear in the island
        // occupation, so firing an a→b event on junction `f` shifts every
        // junction `j`'s potential-gap term by the build-time constant
        //
        //   g[f][j] = e·(resp_f[a_j] − resp_f[b_j])   (joule),
        //
        // external endpoints contributing zero. The incremental event-rate
        // table (`events.rs`) only needs the *sparsity*: per fired junction,
        // the list of junctions whose coupling exceeds a small threshold
        // relative to the strongest coupling in the system. A coupling below
        // the threshold drifts an untouched event's ΔF by at most
        // REFRESH_INTERVAL·θ between two exact refreshes, which is what the
        // `coupling_margin` stability guard accounts for.
        let gap_shift = |f: usize, j: &Junction| -> f64 {
            let resp = &event_response[f];
            let at = |e: Endpoint| match e {
                Endpoint::Island(i) => resp[i],
                Endpoint::External(_) => 0.0,
            };
            E * (at(j.a) - at(j.b))
        };
        let n_junctions = self.junctions.len();
        let mut g_max = 0.0_f64;
        for f in 0..n_junctions {
            for j in &self.junctions {
                g_max = g_max.max(gap_shift(f, j).abs());
            }
        }
        let threshold = COUPLING_THRESHOLD_REL * g_max;
        let coupling_strong: Vec<Vec<u32>> = (0..n_junctions)
            .map(|f| {
                self.junctions
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| gap_shift(f, j).abs() > threshold)
                    .map(|(idx, _)| idx as u32)
                    .collect()
            })
            .collect();
        // The coupling values of each strong list, stored contiguously so
        // the per-event axpy reads one cache-friendly slice instead of
        // recomputing the endpoint algebra per entry.
        let coupling_strong_values: Vec<Vec<f64>> = (0..n_junctions)
            .map(|f| {
                coupling_strong[f]
                    .iter()
                    .map(|&j| gap_shift(f, &self.junctions[j as usize]))
                    .collect()
            })
            .collect();
        let coupling_margin = 2.0 * f64::from(crate::live::REFRESH_INTERVAL) * threshold;

        // Per-electrode potential response ∂φ/∂V_k = K · C(:,k): a voltage
        // step on electrode k moves every island potential by one axpy of
        // this column, which is what keeps drive changes O(islands) on the
        // incremental hot path.
        let drive_response = (0..n_externals)
            .map(|k| {
                let rhs: Vec<f64> = (0..n_islands)
                    .map(|i| {
                        coupling[i]
                            .iter()
                            .filter(|&&(electrode, _)| electrode == k)
                            .map(|&(_, c)| c)
                            .sum()
                    })
                    .collect();
                inverse.mul_vec(&rhs)
            })
            .collect();

        Ok(TunnelSystem {
            island_names: self.island_names.clone(),
            background_charges: self.background_charges.clone(),
            external_names: self.external_names.clone(),
            external_voltages: self.external_voltages.clone(),
            junctions: self.junctions.clone(),
            capacitors: self.capacitors.clone(),
            c_ii,
            c_ii_inverse: inverse,
            coupling,
            self_charging,
            event_response,
            coupling_strong,
            coupling_strong_values,
            coupling_margin,
            drive_response,
        })
    }
}

/// A circuit of islands and external electrodes connected by tunnel
/// junctions and capacitors, with precomputed electrostatics.
#[derive(Debug, Clone)]
pub struct TunnelSystem {
    island_names: Vec<String>,
    background_charges: Vec<f64>,
    external_names: Vec<String>,
    external_voltages: Vec<f64>,
    junctions: Vec<Junction>,
    capacitors: Vec<Capacitor>,
    c_ii: Matrix,
    c_ii_inverse: Matrix,
    /// For each island, the list of (external index, coupling capacitance).
    coupling: Vec<Vec<(usize, f64)>>,
    /// Per-junction self-charging constant `K_aa + K_bb − 2·K_ab` (1/farad).
    self_charging: Vec<f64>,
    /// Per-junction island-potential change of one a→b tunnel event
    /// (volt): `e·K[:,a] − e·K[:,b]`, zero contribution for external
    /// endpoints.
    event_response: Vec<Vec<f64>>,
    /// Per-junction event-coupling strong list: `coupling_strong[f]` holds
    /// every junction index whose ΔF potential-gap term moves by more than
    /// the negligibility threshold when an event fires on junction `f`
    /// (see [`TunnelSystem::junction_coupling`]). Sorted ascending.
    coupling_strong: Vec<Vec<u32>>,
    /// `coupling_strong_values[f][k]` is
    /// `junction_coupling(f, coupling_strong[f][k])` — the strong list's
    /// coupling constants, aligned entry for entry, so the incremental
    /// event-rate table's axpy streams both slices together.
    coupling_strong_values: Vec<Vec<f64>>,
    /// Stability margin (joule) for the incremental event-rate table: the
    /// accumulated ΔF drift that below-threshold (unlisted) couplings can
    /// contribute between two exact refreshes, with a 2× safety factor.
    coupling_margin: f64,
    /// Per-external-electrode island-potential response `K · C(:,k)`
    /// (dimensionless): the change of every island potential per volt of
    /// electrode `k`.
    drive_response: Vec<Vec<f64>>,
}

impl TunnelSystem {
    /// Starts building a new tunnel system.
    #[must_use]
    pub fn builder() -> TunnelSystemBuilder {
        TunnelSystemBuilder::new()
    }

    /// Number of islands.
    #[must_use]
    pub fn island_count(&self) -> usize {
        self.island_names.len()
    }

    /// Number of external electrodes.
    #[must_use]
    pub fn external_count(&self) -> usize {
        self.external_names.len()
    }

    /// The junctions of the system, in insertion order.
    #[must_use]
    pub fn junctions(&self) -> &[Junction] {
        &self.junctions
    }

    /// The capacitors of the system, in insertion order.
    #[must_use]
    pub fn capacitors(&self) -> &[Capacitor] {
        &self.capacitors
    }

    /// Name of island `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn island_name(&self, i: usize) -> &str {
        &self.island_names[i]
    }

    /// Name of external electrode `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn external_name(&self, k: usize) -> &str {
        &self.external_names[k]
    }

    /// Finds an external electrode index by name.
    #[must_use]
    pub fn external_index(&self, name: &str) -> Option<usize> {
        self.external_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
    }

    /// Current voltage of external electrode `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn external_voltage(&self, k: usize) -> f64 {
        self.external_voltages[k]
    }

    /// Sets the voltage of external electrode `k`.
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::UnknownNode`] if `k` is out of range and
    /// [`OrthodoxError::InvalidParameter`] if the voltage is not finite.
    pub fn set_external_voltage(&mut self, k: usize, voltage: f64) -> Result<(), OrthodoxError> {
        if k >= self.external_voltages.len() {
            return Err(OrthodoxError::UnknownNode(format!(
                "external node {k} does not exist"
            )));
        }
        if !voltage.is_finite() {
            return Err(OrthodoxError::InvalidParameter(format!(
                "external voltage must be finite, got {voltage}"
            )));
        }
        self.external_voltages[k] = voltage;
        Ok(())
    }

    /// Background (offset) charge of island `i` in units of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn background_charge(&self, i: usize) -> f64 {
        self.background_charges[i]
    }

    /// Sets the background charge of island `i` (in units of `e`).
    ///
    /// # Errors
    ///
    /// Returns [`OrthodoxError::UnknownNode`] if `i` is out of range.
    pub fn set_background_charge(&mut self, i: usize, q0: f64) -> Result<(), OrthodoxError> {
        if i >= self.background_charges.len() {
            return Err(OrthodoxError::UnknownNode(format!(
                "island {i} does not exist"
            )));
        }
        self.background_charges[i] = q0;
        Ok(())
    }

    /// Total capacitance attached to island `i` (the `CΣ` of the charging
    /// energy `e²/2CΣ`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn total_island_capacitance(&self, i: usize) -> f64 {
        self.c_ii[(i, i)]
    }

    /// Charging energy `e²/(2·CΣ)` of island `i` in joule.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn charging_energy(&self, i: usize) -> f64 {
        E * E / (2.0 * self.total_island_capacitance(i))
    }

    /// Island charge vector in coulomb for a given charge state:
    /// `q_i = −e·n_i + e·q0_i`.
    #[must_use]
    pub fn island_charges(&self, state: &ChargeState) -> Vec<f64> {
        state
            .0
            .iter()
            .zip(&self.background_charges)
            .map(|(&n, &q0)| -E * n as f64 + E * q0)
            .collect()
    }

    /// Island potentials for a given charge state, in volt.
    #[must_use]
    pub fn island_potentials(&self, state: &ChargeState) -> Vec<f64> {
        let q = self.island_charges(state);
        let rhs: Vec<f64> = (0..self.island_count())
            .map(|i| {
                let s: f64 = self.coupling[i]
                    .iter()
                    .map(|&(k, c)| c * self.external_voltages[k])
                    .sum();
                q[i] + s
            })
            .collect();
        self.c_ii_inverse.mul_vec(&rhs)
    }

    /// Potential of an endpoint given precomputed island potentials.
    #[must_use]
    pub fn endpoint_potential(&self, endpoint: Endpoint, island_potentials: &[f64]) -> f64 {
        match endpoint {
            Endpoint::Island(i) => island_potentials[i],
            Endpoint::External(k) => self.external_voltages[k],
        }
    }

    /// Work done by the voltage sources when the tunnelling electron of
    /// `event` enters or leaves an external electrode, in joule.
    ///
    /// The invariant connecting the three energy methods is
    /// `delta_free_energy(state, event) == electrostatic_energy(after) −
    /// electrostatic_energy(before) − event_source_work(event)`.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[must_use]
    pub fn event_source_work(&self, event: TunnelEvent) -> f64 {
        let (from, to) = self.event_endpoints(event);
        let v = |e: Endpoint| match e {
            Endpoint::External(k) => self.external_voltages[k],
            Endpoint::Island(_) => 0.0,
        };
        let is_external = |e: Endpoint| matches!(e, Endpoint::External(_));
        let mut work = 0.0;
        if is_external(to) {
            work += E * v(to);
        }
        if is_external(from) {
            work -= E * v(from);
        }
        work
    }

    /// Electrostatic energy of a charge state (up to a state-independent
    /// constant), in joule.
    ///
    /// This is the capacitive part only; the work done by the voltage sources
    /// on tunnelling electrons is accounted for separately by
    /// [`Self::event_source_work`]. See [`Self::delta_free_energy`] for the
    /// quantity that decides whether an event is favourable.
    #[must_use]
    pub fn electrostatic_energy(&self, state: &ChargeState) -> f64 {
        let q = self.island_charges(state);
        let rhs: Vec<f64> = (0..self.island_count())
            .map(|i| {
                let s: f64 = self.coupling[i]
                    .iter()
                    .map(|&(k, c)| c * self.external_voltages[k])
                    .sum();
                q[i] + s
            })
            .collect();
        let phi = self.c_ii_inverse.mul_vec(&rhs);
        0.5 * rhs.iter().zip(&phi).map(|(a, b)| a * b).sum::<f64>()
    }

    /// All candidate tunnel events (two per junction).
    #[must_use]
    pub fn events(&self) -> Vec<TunnelEvent> {
        (0..self.event_count()).map(|i| self.event(i)).collect()
    }

    /// Number of candidate tunnel events (two per junction).
    #[must_use]
    pub fn event_count(&self) -> usize {
        2 * self.junctions.len()
    }

    /// The candidate tunnel event with canonical index `index`: events are
    /// ordered `(junction 0, a→b)`, `(junction 0, b→a)`, `(junction 1, a→b)`,
    /// … — the same order [`Self::events`] enumerates. This is the
    /// allocation-free face of the enumeration used by the hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.event_count()`.
    #[must_use]
    pub fn event(&self, index: usize) -> TunnelEvent {
        assert!(index < self.event_count(), "event index out of bounds");
        TunnelEvent {
            junction: index / 2,
            direction: if index.is_multiple_of(2) {
                Direction::AToB
            } else {
                Direction::BToA
            },
        }
    }

    /// The `(from, to)` endpoints of an event (the electron moves from
    /// `from` to `to`).
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[must_use]
    pub fn event_endpoints(&self, event: TunnelEvent) -> (Endpoint, Endpoint) {
        let j = &self.junctions[event.junction];
        match event.direction {
            Direction::AToB => (j.a, j.b),
            Direction::BToA => (j.b, j.a),
        }
    }

    /// Free-energy change `ΔF` (joule) caused by the tunnel event in the
    /// given charge state. Negative `ΔF` means the event is energetically
    /// favourable.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[must_use]
    pub fn delta_free_energy(&self, state: &ChargeState, event: TunnelEvent) -> f64 {
        let potentials = self.island_potentials(state);
        self.delta_free_energy_with_potentials(&potentials, event)
    }

    /// Same as [`Self::delta_free_energy`] but re-using island potentials
    /// computed once for the current state — the hot path of the Monte-Carlo
    /// loop, which evaluates every candidate event in the same state.
    #[must_use]
    pub fn delta_free_energy_with_potentials(
        &self,
        island_potentials: &[f64],
        event: TunnelEvent,
    ) -> f64 {
        let (from, to) = self.event_endpoints(event);
        let phi_from = self.endpoint_potential(from, island_potentials);
        let phi_to = self.endpoint_potential(to, island_potentials);
        E * (phi_from - phi_to) + 0.5 * E * E * self.self_charging[event.junction]
    }

    /// The self-charging constant `K_aa + K_bb − 2·K_ab` of a junction
    /// (1/farad), precomputed at build time. `e²/2` times this constant is
    /// the state- and direction-independent part of the junction's ΔF, which
    /// is what makes per-event free-energy evaluation O(1) once island
    /// potentials are cached (see [`crate::live::LiveState`]).
    ///
    /// # Panics
    ///
    /// Panics if `junction` is out of range.
    #[must_use]
    pub fn junction_self_charging(&self, junction: usize) -> f64 {
        self.self_charging[junction]
    }

    /// Row `i` of the precomputed inverse island capacitance matrix
    /// `K = C_II⁻¹` (equal to column `i`: `C_II` is symmetric). Adding
    /// `Δq·K[i]` to the island potentials is the O(islands) incremental
    /// update for a charge change `Δq` on island `i`.
    pub(crate) fn inverse_row(&self, i: usize) -> &[f64] {
        self.c_ii_inverse.row(i)
    }

    /// The island-potential response `∂φ/∂V_k` of external electrode `k`.
    pub(crate) fn drive_response(&self, k: usize) -> &[f64] {
        &self.drive_response[k]
    }

    /// The island-potential change caused by one a→b tunnel event across
    /// junction `j` (negate for b→a).
    pub(crate) fn junction_response(&self, j: usize) -> &[f64] {
        &self.event_response[j]
    }

    /// The event-coupling constant `g[fired][observed]` in joule: how much
    /// the *potential-gap* term of junction `observed`'s ΔF moves when one
    /// a→b event fires on junction `fired` (negate for b→a; the
    /// self-charging term never moves). Orthodox ΔF is linear in the island
    /// occupation, so this is a build-time constant of the capacitance
    /// matrix — the algebraic fact the incremental event-rate table's
    /// sparsity rests on.
    ///
    /// # Panics
    ///
    /// Panics if either junction index is out of range.
    #[must_use]
    pub fn junction_coupling(&self, fired: usize, observed: usize) -> f64 {
        let resp = &self.event_response[fired];
        let at = |e: Endpoint| match e {
            Endpoint::Island(i) => resp[i],
            Endpoint::External(_) => 0.0,
        };
        let j = &self.junctions[observed];
        E * (at(j.a) - at(j.b))
    }

    /// The junctions whose ΔF moves non-negligibly when an event fires on
    /// junction `fired` — every `observed` with
    /// `|junction_coupling(fired, observed)|` above the build-time
    /// negligibility threshold, sorted ascending. The incremental event-rate
    /// table re-evaluates exactly these junctions after each event; the
    /// drift every *unlisted* coupling can accumulate between two exact
    /// refreshes is bounded by [`TunnelSystem::coupling_margin`].
    ///
    /// # Panics
    ///
    /// Panics if `fired` is out of range.
    #[must_use]
    pub fn junction_strong_couplings(&self, fired: usize) -> &[u32] {
        &self.coupling_strong[fired]
    }

    /// The coupling constants of `fired`'s strong list, aligned entry for
    /// entry with [`TunnelSystem::junction_strong_couplings`]:
    /// `junction_strong_coupling_values(f)[k]` equals
    /// `junction_coupling(f, junction_strong_couplings(f)[k])`.
    ///
    /// # Panics
    ///
    /// Panics if `fired` is out of range.
    #[must_use]
    pub fn junction_strong_coupling_values(&self, fired: usize) -> &[f64] {
        &self.coupling_strong_values[fired]
    }

    /// The ΔF stability margin in joule: an event whose ΔF exceeds the
    /// frozen cutoff *plus this margin* is guaranteed to stay past the
    /// cutoff (rate exactly zero) under any sequence of weak-coupling
    /// drifts until the next exact refresh, so the incremental event-rate
    /// table can skip it entirely.
    #[must_use]
    pub fn coupling_margin(&self) -> f64 {
        self.coupling_margin
    }

    /// Tunnel resistance of the junction involved in `event`, in ohm.
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    #[must_use]
    pub fn event_resistance(&self, event: TunnelEvent) -> f64 {
        self.junctions[event.junction].resistance
    }

    /// Applies the event to a charge state, moving one electron between the
    /// island endpoints involved (external endpoints are charge reservoirs
    /// and are not tracked).
    ///
    /// # Panics
    ///
    /// Panics if the event's junction index is out of range.
    pub fn apply_event(&self, state: &mut ChargeState, event: TunnelEvent) {
        let (from, to) = self.event_endpoints(event);
        if let Endpoint::Island(i) = from {
            state.0[i] -= 1;
        }
        if let Endpoint::Island(i) = to {
            state.0[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Canonical symmetric SET: drain (external), source (external, grounded),
    /// gate (external) coupled to a single island through Cg.
    fn symmetric_set(vd: f64, vg: f64, q0: f64) -> (TunnelSystem, TunnelEvent, TunnelEvent) {
        let mut b = TunnelSystem::builder();
        let island = b.island("island", q0);
        let drain = b.external("drain", vd);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", vg);
        b.junction("J_d", drain, island, 1e-18, 100e3);
        b.junction("J_s", island, source, 1e-18, 100e3);
        b.capacitor("C_g", gate, island, 0.5e-18);
        let system = b.build().unwrap();
        // Event 0/1 belong to J_d, event 2/3 to J_s.
        let onto_island = TunnelEvent {
            junction: 0,
            direction: Direction::AToB,
        };
        let off_island = TunnelEvent {
            junction: 1,
            direction: Direction::AToB,
        };
        (system, onto_island, off_island)
    }

    #[test]
    fn builder_rejects_invalid_systems() {
        // No islands.
        let mut b = TunnelSystemBuilder::new();
        let a = b.external("a", 0.0);
        let c = b.external("c", 1.0);
        b.junction("J", a, c, 1e-18, 1e5);
        assert!(b.build().is_err());

        // No junction.
        let mut b = TunnelSystemBuilder::new();
        let i = b.island("i", 0.0);
        let g = b.external("g", 0.0);
        b.capacitor("C", g, i, 1e-18);
        assert!(b.build().is_err());

        // Bad capacitance.
        let mut b = TunnelSystemBuilder::new();
        let i = b.island("i", 0.0);
        let g = b.external("g", 0.0);
        b.junction("J", g, i, -1e-18, 1e5);
        assert!(b.build().is_err());

        // Island without any connection.
        let mut b = TunnelSystemBuilder::new();
        let _lonely = b.island("lonely", 0.0);
        let i = b.island("i", 0.0);
        let g = b.external("g", 0.0);
        b.junction("J", g, i, 1e-18, 1e5);
        assert!(matches!(
            b.build(),
            Err(OrthodoxError::SingularCapacitanceMatrix(_))
        ));

        // Endpoint out of range.
        let mut b = TunnelSystemBuilder::new();
        let i = b.island("i", 0.0);
        b.junction("J", i, Endpoint::External(7), 1e-18, 1e5);
        assert!(matches!(b.build(), Err(OrthodoxError::UnknownNode(_))));
    }

    #[test]
    fn total_capacitance_and_charging_energy() {
        let (system, _, _) = symmetric_set(0.0, 0.0, 0.0);
        let c_total = system.total_island_capacitance(0);
        assert!((c_total - 2.5e-18).abs() < 1e-30);
        let ec = system.charging_energy(0);
        assert!((ec - E * E / (2.0 * 2.5e-18)).abs() < 1e-25);
    }

    #[test]
    fn island_potential_matches_hand_formula() {
        let vd = 0.01;
        let vg = 0.05;
        let (system, _, _) = symmetric_set(vd, vg, 0.0);
        let state = ChargeState(vec![2]);
        let phi = system.island_potentials(&state)[0];
        // phi = (q + C_d*V_d + C_g*V_g) / C_sigma with q = -2e.
        let expected = (-2.0 * E + 1e-18 * vd + 0.5e-18 * vg) / 2.5e-18;
        assert!((phi - expected).abs() < 1e-9 * expected.abs().max(1e-6));
    }

    #[test]
    fn blockade_at_zero_gate_charge() {
        // With q0 = 0, Vg = 0 and a tiny bias, both "electron onto island"
        // events must cost energy (Coulomb blockade).
        let (system, onto, _) = symmetric_set(1e-4, 0.0, 0.0);
        let state = ChargeState::neutral(1);
        let df_onto = system.delta_free_energy(&state, onto);
        assert!(
            df_onto > 0.0,
            "ΔF = {df_onto} should be positive in blockade"
        );
        // The charging energy scale is e²/2CΣ ≈ 32 meV here.
        let ec = system.charging_energy(0);
        assert!(df_onto > 0.5 * ec);
    }

    #[test]
    fn degeneracy_point_lifts_blockade() {
        // At gate charge CgVg = e/2 the n=0 and n=1 states are degenerate,
        // so the cost of adding an electron vanishes (up to the small bias).
        let cg = 0.5e-18;
        let vg = E / (2.0 * cg);
        let (system, onto, _) = symmetric_set(0.0, vg, 0.0);
        let state = ChargeState::neutral(1);
        let df = system.delta_free_energy(&state, onto);
        let ec = system.charging_energy(0);
        assert!(
            df.abs() < 1e-3 * ec,
            "ΔF at the degeneracy point should be ≈ 0, got {df} (Ec = {ec})"
        );
    }

    #[test]
    fn background_charge_shifts_degeneracy_point() {
        // A background charge of +0.5 e moves the degeneracy to Vg = 0.
        let (system, onto, _) = symmetric_set(0.0, 0.0, 0.5);
        let state = ChargeState::neutral(1);
        let df = system.delta_free_energy(&state, onto);
        let ec = system.charging_energy(0);
        assert!(df.abs() < 1e-3 * ec);
    }

    #[test]
    fn delta_free_energy_matches_textbook_double_junction() {
        // Pure double junction (no gate): ΔF for tunnelling onto the island
        // through the drain junction is (e/CΣ)(e/2 − q_I + C_s·V_d).
        let vd = 0.002;
        let mut b = TunnelSystem::builder();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", vd);
        let source = b.external("source", 0.0);
        b.junction("J_d", drain, island, 1.5e-18, 50e3);
        b.junction("J_s", island, source, 0.5e-18, 50e3);
        let system = b.build().unwrap();
        let state = ChargeState(vec![-1]); // one electron removed: q_I = +e
        let event = TunnelEvent {
            junction: 0,
            direction: Direction::AToB,
        };
        let df = system.delta_free_energy(&state, event);
        let c_sigma = 2e-18;
        let q_i = E; // n = -1 means q = +e
        let expected = (E / c_sigma) * (E / 2.0 - q_i + 0.5e-18 * vd);
        assert!(
            (df - expected).abs() < 1e-6 * expected.abs().max(1e-25),
            "ΔF = {df}, expected {expected}"
        );
    }

    #[test]
    fn forward_and_backward_events_are_consistent() {
        // ΔF(forward, state) == −ΔF(backward, state after forward).
        let (system, onto, _) = symmetric_set(5e-3, 0.02, 0.1);
        let mut state = ChargeState::neutral(1);
        let df_forward = system.delta_free_energy(&state, onto);
        system.apply_event(&mut state, onto);
        let df_backward = system.delta_free_energy(&state, onto.reversed());
        assert!(
            (df_forward + df_backward).abs() < 1e-9 * df_forward.abs().max(1e-25),
            "forward {df_forward} vs backward {df_backward}"
        );
    }

    #[test]
    fn delta_free_energy_equals_energy_difference_minus_source_work() {
        let (system, onto, off) = symmetric_set(3e-3, 0.04, 0.2);
        for event in [onto, off, onto.reversed(), off.reversed()] {
            let state = ChargeState(vec![1]);
            let mut after = state.clone();
            system.apply_event(&mut after, event);
            let df_direct = system.delta_free_energy(&state, event);
            let df_from_f = system.electrostatic_energy(&after)
                - system.electrostatic_energy(&state)
                - system.event_source_work(event);
            assert!(
                (df_direct - df_from_f).abs() < 1e-9 * df_direct.abs().max(1e-25),
                "event {event:?}: direct {df_direct} vs difference {df_from_f}"
            );
        }
    }

    #[test]
    fn apply_event_moves_electrons_between_islands() {
        let mut b = TunnelSystem::builder();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let lead = b.external("lead", 0.0);
        b.junction("J1", lead, i1, 1e-18, 1e5);
        b.junction("J12", i1, i2, 1e-18, 1e5);
        let gate = b.external("g", 0.0);
        b.capacitor("Cg1", gate, i1, 0.5e-18);
        b.capacitor("Cg2", gate, i2, 0.5e-18);
        let system = b.build().unwrap();

        let mut state = ChargeState::neutral(2);
        // Electron from lead onto island 1.
        system.apply_event(
            &mut state,
            TunnelEvent {
                junction: 0,
                direction: Direction::AToB,
            },
        );
        assert_eq!(state.0, vec![1, 0]);
        // Electron from island 1 to island 2.
        system.apply_event(
            &mut state,
            TunnelEvent {
                junction: 1,
                direction: Direction::AToB,
            },
        );
        assert_eq!(state.0, vec![0, 1]);
        assert_eq!(state.total_electrons(), 1);
    }

    #[test]
    fn external_voltage_and_background_charge_setters() {
        let (mut system, _, _) = symmetric_set(0.0, 0.0, 0.0);
        system.set_external_voltage(0, 0.01).unwrap();
        assert_eq!(system.external_voltage(0), 0.01);
        assert!(system.set_external_voltage(9, 0.0).is_err());
        assert!(system.set_external_voltage(0, f64::NAN).is_err());
        system.set_background_charge(0, 0.25).unwrap();
        assert_eq!(system.background_charge(0), 0.25);
        assert!(system.set_background_charge(5, 0.1).is_err());
        assert_eq!(system.external_index("gate"), Some(2));
        assert_eq!(system.external_index("nope"), None);
    }

    #[test]
    fn events_enumerates_two_per_junction() {
        let (system, _, _) = symmetric_set(0.0, 0.0, 0.0);
        assert_eq!(system.events().len(), 4);
        assert_eq!(system.event_count(), 4);
        for (i, event) in system.events().into_iter().enumerate() {
            assert_eq!(system.event(i), event, "canonical order at index {i}");
        }
    }

    #[test]
    fn singular_capacitance_error_names_the_degenerate_island() {
        // Two islands coupled only to each other: C_II = [[c, −c], [−c, c]]
        // is singular even though both diagonal entries are positive.
        let mut b = TunnelSystemBuilder::new();
        let i1 = b.island("inner1", 0.0);
        let i2 = b.island("inner2", 0.0);
        b.junction("J", i1, i2, 1e-18, 1e5);
        match b.build().unwrap_err() {
            OrthodoxError::SingularCapacitanceMatrix(msg) => {
                assert!(
                    msg.contains("`inner2`") && msg.contains("column 1"),
                    "message should name the degenerate island and row: {msg}"
                );
            }
            other => panic!("expected a singular-capacitance error, got {other:?}"),
        }
    }

    #[test]
    fn self_charging_table_matches_inverse_matrix_expression() {
        let mut b = TunnelSystem::builder();
        let i1 = b.island("i1", 0.0);
        let i2 = b.island("i2", 0.0);
        let lead = b.external("lead", 0.0);
        b.junction("J1", lead, i1, 1.5e-18, 1e5);
        b.junction("J12", i1, i2, 0.7e-18, 2e5);
        b.capacitor("Cg", lead, i2, 0.4e-18);
        let system = b.build().unwrap();
        // Lead junction: only the island end contributes (K_aa of island 0).
        let neutral = ChargeState::neutral(2);
        let potentials = system.island_potentials(&neutral);
        for event in system.events() {
            // ΔF from the table must equal the explicit two-potential form.
            let df = system.delta_free_energy_with_potentials(&potentials, event);
            let df_full = system.delta_free_energy(&neutral, event);
            assert!((df - df_full).abs() < 1e-9 * df.abs().max(1e-25));
        }
        // The island–island junction constant is K_00 + K_11 − 2·K_01 > 0.
        assert!(system.junction_self_charging(1) > 0.0);
        // And it is direction-independent by construction: events 2 and 3
        // (both directions of J12) share the same self-charging cost.
        let c = system.junction_self_charging(1);
        let ev_ab = system.event(2);
        let ev_ba = system.event(3);
        let sum =
            system.delta_free_energy(&neutral, ev_ab) + system.delta_free_energy(&neutral, ev_ba);
        assert!((sum - E * E * c).abs() < 1e-9 * sum.abs().max(1e-30));
    }

    proptest! {
        /// The free-energy change of any event equals the electrostatic
        /// energy difference minus the source work, for arbitrary biases,
        /// background charges and starting states.
        #[test]
        fn prop_delta_f_is_a_difference(
            vd in -0.05_f64..0.05,
            vg in -0.2_f64..0.2,
            q0 in -1.0_f64..1.0,
            n in -3_i64..=3,
            event_idx in 0_usize..4,
        ) {
            let (system, _, _) = symmetric_set(vd, vg, q0);
            let events = system.events();
            let event = events[event_idx];
            let state = ChargeState(vec![n]);
            let mut after = state.clone();
            system.apply_event(&mut after, event);
            let direct = system.delta_free_energy(&state, event);
            let diff = system.electrostatic_energy(&after)
                - system.electrostatic_energy(&state)
                - system.event_source_work(event);
            prop_assert!((direct - diff).abs() < 1e-9 * direct.abs().max(1e-24));
        }

        /// Energy is conserved around a cycle: tunnelling an electron onto
        /// the island and immediately back must cost exactly zero in total.
        #[test]
        fn prop_cycle_energy_is_zero(
            vd in -0.05_f64..0.05,
            vg in -0.2_f64..0.2,
            q0 in -1.0_f64..1.0,
        ) {
            let (system, onto, _) = symmetric_set(vd, vg, q0);
            let mut state = ChargeState::neutral(1);
            let df1 = system.delta_free_energy(&state, onto);
            system.apply_event(&mut state, onto);
            let df2 = system.delta_free_energy(&state, onto.reversed());
            prop_assert!((df1 + df2).abs() < 1e-9 * df1.abs().max(1e-24));
        }
    }
}
