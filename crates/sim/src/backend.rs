//! Engine backends: lowering a netlist onto each simulator family and the
//! enum dispatch that gives every family one face.
//!
//! The compiler ([`crate::plan`]) decides *which* engine runs a deck; this
//! module builds that engine. Two wrappers close the naming gap between
//! decks and engines:
//!
//! * [`SourceMapped`] — the master-equation and kinetic Monte-Carlo engines
//!   resolve *electrode* (node) names, while decks sweep *source* names
//!   (`.dc VD …`). The wrapper translates each ground-referenced voltage
//!   source to the electrode node it pins.
//! * [`AnalyticDeckEngine`] — the closed-form SET model has fixed `drain` /
//!   `gate` controls; the wrapper maps the deck's drain/gate sources and
//!   junction names onto them (with the correct reference-direction signs)
//!   after verifying the netlist *is* a single SET.

use crate::error::SimError;
use se_engine::{
    ControlId, ObservableId, QuasiStatic, StationaryEngine, TransientEngine, TransientTrace,
    Waveform,
};
use se_hybrid::{HybridOptions, HybridStationaryEngine, HybridTransientEngine, IslandEngine};
use se_montecarlo::{
    tunnel_system_from_netlist, MasterEquation, MonteCarloSimulator, Preconditioner,
    SimulationOptions, StationarySolver,
};
use se_netlist::{
    partition_report, AnalysisOptions, Element, ElementKind, Netlist, Node, SolverPreference,
};
use se_orthodox::set::SingleElectronTransistor;
use se_orthodox::AnalyticSetEngine;
use se_spice::{Circuit, NewtonOptions, SpiceDcEngine, SpiceTransientEngine};
use std::collections::HashMap;

/// Translates deck-level *source* names to the electrode (node) names the
/// detailed engines resolve, passing unknown names through untouched (so
/// electrode names keep working too).
#[derive(Debug, Clone)]
pub struct SourceMapped<E> {
    engine: E,
    /// Lower-cased source name → electrode node name.
    map: HashMap<String, String>,
}

impl<E> SourceMapped<E> {
    /// Wraps an engine with the source→electrode map of `netlist`.
    pub fn new(engine: E, netlist: &Netlist) -> Self {
        let mut map = HashMap::new();
        for source in netlist.voltage_sources() {
            let nodes = source.nodes();
            let pinned = if nodes[1].is_ground() {
                Some(nodes[0])
            } else if nodes[0].is_ground() {
                Some(nodes[1])
            } else {
                None
            };
            if let Some(node) = pinned {
                if let Some(name) = netlist.node_name(node) {
                    map.insert(source.name().to_ascii_lowercase(), name.to_string());
                }
            }
        }
        SourceMapped { engine, map }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.engine
    }

    fn translate<'a>(&'a self, name: &'a str) -> &'a str {
        self.map
            .get(&name.to_ascii_lowercase())
            .map_or(name, String::as_str)
    }
}

impl<E> StationaryEngine for SourceMapped<E>
where
    E: StationaryEngine,
    SimError: From<E::Error>,
{
    type Error = SimError;

    fn engine_name(&self) -> &'static str {
        self.engine.engine_name()
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, SimError> {
        Ok(self.engine.resolve_control(self.translate(name))?)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SimError> {
        Ok(self.engine.resolve_observable(name)?)
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        Ok(self
            .engine
            .stationary_currents(controls, observables, seed)?)
    }

    fn stationary_currents_ensemble(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seeds: &[u64],
    ) -> Result<Vec<Vec<f64>>, SimError> {
        Ok(self
            .engine
            .stationary_currents_ensemble(controls, observables, seeds)?)
    }

    fn has_batched_stationary_ensemble(&self) -> bool {
        self.engine.has_batched_stationary_ensemble()
    }
}

impl<E> TransientEngine for SourceMapped<E>
where
    E: TransientEngine,
    SimError: From<E::Error>,
{
    type Error = SimError;

    fn engine_name(&self) -> &'static str {
        TransientEngine::engine_name(&self.engine)
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, SimError> {
        Ok(self.engine.resolve_drive(self.translate(name))?)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SimError> {
        Ok(TransientEngine::resolve_observable(&self.engine, name)?)
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, SimError> {
        Ok(self
            .engine
            .transient_currents(drives, observables, times, seed)?)
    }

    fn transient_currents_ensemble(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seeds: &[u64],
    ) -> Result<Vec<TransientTrace>, SimError> {
        Ok(self
            .engine
            .transient_currents_ensemble(drives, observables, times, seeds)?)
    }

    fn has_batched_transient_ensemble(&self) -> bool {
        self.engine.has_batched_transient_ensemble()
    }
}

/// The analytic SET model addressed with deck names: sources map to the
/// `drain`/`gate` controls, junction names map (with reference-direction
/// signs) to the single drain-current observable.
#[derive(Debug, Clone)]
pub struct AnalyticDeckEngine {
    inner: AnalyticSetEngine,
    /// Lower-cased deck source name → analytic control name.
    controls: HashMap<String, &'static str>,
    /// Junction names aliasing the drain current, with the sign that maps
    /// the analytic drain current into each junction's `a → b` reference
    /// direction.
    observables: Vec<(String, f64)>,
}

impl StationaryEngine for AnalyticDeckEngine {
    type Error = SimError;

    fn engine_name(&self) -> &'static str {
        "analytic-set"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, SimError> {
        let mapped = self
            .controls
            .get(&name.to_ascii_lowercase())
            .copied()
            .unwrap_or(name);
        Ok(self.inner.resolve_control(mapped)?)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SimError> {
        self.observables
            .iter()
            .position(|(junction, _)| junction.eq_ignore_ascii_case(name))
            .map(ObservableId)
            .ok_or_else(|| {
                let available: Vec<&str> = self
                    .observables
                    .iter()
                    .map(|(junction, _)| junction.as_str())
                    .collect();
                SimError::Plan(format!(
                    "the analytic SET backend has no observable `{name}` (available: {})",
                    available.join(", ")
                ))
            })
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        let drain = self
            .inner
            .stationary_current(controls, ObservableId(0), seed)?;
        observables
            .iter()
            .map(|&ObservableId(index)| {
                self.observables
                    .get(index)
                    .map(|&(_, sign)| sign * drain)
                    .ok_or_else(|| {
                        SimError::Plan(format!("unknown analytic observable handle {index}"))
                    })
            })
            .collect()
    }
}

/// The far (non-island) node of a two-terminal element touching `island`.
fn far_node(element: &Element, island: Node) -> Node {
    let nodes = element.nodes();
    if nodes[0] == island {
        nodes[1]
    } else {
        nodes[0]
    }
}

/// Lowers a single-SET netlist onto the analytic model.
///
/// The netlist must be purely single-electron with exactly one
/// single-node island, two tunnel junctions (one of them to ground — the
/// source junction), one gate capacitor, and ground-referenced voltage
/// sources pinning the drain and gate electrodes (positive terminal on the
/// electrode).
///
/// # Errors
///
/// Returns [`SimError::Plan`] naming the structural mismatch when the
/// netlist is not a single SET of that shape.
pub fn analytic_from_netlist(
    netlist: &Netlist,
    temperature: f64,
) -> Result<AnalyticDeckEngine, SimError> {
    let report = partition_report(netlist);
    if !report.is_pure_single_electron() {
        let reasons = report.hybrid_reasons();
        let detail = if report.is_pure_conventional() {
            "it has no single-electron island".to_string()
        } else {
            reasons.join("; ")
        };
        return Err(SimError::Plan(format!(
            "the analytic backend needs a pure single-SET circuit: {detail}"
        )));
    }
    let islands = &report.split.islands;
    if islands.len() != 1 || islands[0].nodes.len() != 1 {
        return Err(SimError::Plan(format!(
            "the analytic backend models exactly one single-node island, this deck has {} island \
             group(s) over nodes [{}]",
            islands.len(),
            report.island_nodes.join(", ")
        )));
    }
    let island = islands[0].nodes[0];
    if islands[0].junctions.len() != 2 {
        return Err(SimError::Plan(format!(
            "the analytic backend needs exactly two tunnel junctions, got {} ({})",
            islands[0].junctions.len(),
            islands[0].junctions.join(", ")
        )));
    }

    // Which node does each ground-referenced source pin, and at what value?
    // Only sources with their *positive* terminal on the electrode are
    // accepted, so that sweeping the source by name sweeps the electrode
    // with the same sign.
    let mut pinned: HashMap<Node, (&str, f64)> = HashMap::new();
    for source in netlist.voltage_sources() {
        if let ElementKind::VoltageSource { voltage } = source.kind() {
            let nodes = source.nodes();
            if nodes[1].is_ground() {
                pinned.insert(nodes[0], (source.name(), *voltage));
            }
        }
    }
    let node_label = |node: Node| netlist.node_name(node).unwrap_or("?").to_string();

    // Split the two junctions into the grounded source junction and the
    // source-pinned drain junction.
    let j_elements: Vec<&Element> = islands[0]
        .junctions
        .iter()
        .map(|name| {
            netlist
                .element(name)
                .ok_or_else(|| SimError::Plan(format!("junction `{name}` vanished from netlist")))
        })
        .collect::<Result<_, _>>()?;
    let grounded: Vec<&&Element> = j_elements
        .iter()
        .filter(|j| far_node(j, island).is_ground())
        .collect();
    let (source_j, drain_j) = match grounded.len() {
        1 => {
            let source_j = *grounded[0];
            let drain_j = *j_elements
                .iter()
                .find(|j| !far_node(j, island).is_ground())
                .expect("two junctions, one grounded");
            (source_j, drain_j)
        }
        0 => {
            return Err(SimError::Plan(
                "the analytic backend needs a grounded source junction (one junction between \
                 the island and node 0)"
                    .into(),
            ))
        }
        _ => {
            return Err(SimError::Plan(
                "the analytic backend needs a drain electrode, but both junctions connect the \
                 island to ground"
                    .into(),
            ))
        }
    };
    let drain_node = far_node(drain_j, island);
    let Some(&(drain_source, vds)) = pinned.get(&drain_node) else {
        return Err(SimError::Plan(format!(
            "drain electrode `{}` must be pinned by a ground-referenced voltage source with its \
             positive terminal on the electrode",
            node_label(drain_node)
        )));
    };

    // The gate: exactly one non-junction capacitor touching the island,
    // with a source-pinned far node.
    let gates: Vec<&Element> = netlist
        .elements()
        .iter()
        .filter(|e| {
            matches!(e.kind(), ElementKind::Capacitor { .. }) && e.nodes().contains(&island)
        })
        .collect();
    if gates.len() != 1 {
        return Err(SimError::Plan(format!(
            "the analytic backend needs exactly one gate capacitor on the island, got {}",
            gates.len()
        )));
    }
    let gate_node = far_node(gates[0], island);
    let Some(&(gate_source, vgs)) = pinned.get(&gate_node) else {
        return Err(SimError::Plan(format!(
            "gate electrode `{}` must be pinned by a ground-referenced voltage source with its \
             positive terminal on the electrode",
            node_label(gate_node)
        )));
    };

    let junction_params = |element: &Element| -> (f64, f64) {
        match element.kind() {
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => (*capacitance, *resistance),
            _ => unreachable!("island junction list only names tunnel junctions"),
        }
    };
    let (c_source, r_source) = junction_params(source_j);
    let (c_drain, r_drain) = junction_params(drain_j);
    let c_gate = match gates[0].kind() {
        ElementKind::Capacitor { capacitance } => *capacitance,
        _ => unreachable!("gates are filtered to capacitors"),
    };
    let set = SingleElectronTransistor::new(c_gate, c_source, c_drain, r_source, r_drain)?;
    let inner = AnalyticSetEngine::new(set, temperature, 0.0)?.with_bias(vds, vgs);

    let mut controls = HashMap::new();
    controls.insert(drain_source.to_ascii_lowercase(), "drain");
    controls.insert(gate_source.to_ascii_lowercase(), "gate");
    // Positive drain current flows drain → island → ground; each junction
    // reports it in its own `a → b` reference direction.
    let drain_sign = if drain_j.nodes()[0] == drain_node {
        1.0
    } else {
        -1.0
    };
    let source_sign = if source_j.nodes()[0] == island {
        1.0
    } else {
        -1.0
    };
    let observables = vec![
        (drain_j.name().to_string(), drain_sign),
        (source_j.name().to_string(), source_sign),
    ];
    Ok(AnalyticDeckEngine {
        inner,
        controls,
        observables,
    })
}

/// Builds the tunnel system and shared KMC options of a pure
/// single-electron deck.
fn kmc_simulator(
    netlist: &Netlist,
    options: &AnalysisOptions,
) -> Result<MonteCarloSimulator, SimError> {
    let system = tunnel_system_from_netlist(netlist)?;
    let mut sim_options = SimulationOptions::new(options.temperature).with_seed(options.seed);
    if let Some(events) = options.kmc_events {
        sim_options = sim_options.with_events_per_solve(events);
    }
    Ok(MonteCarloSimulator::new(system, sim_options)?)
}

/// The linear solver a deck-level `.options solver=` preference selects.
fn stationary_solver(preference: SolverPreference) -> StationarySolver {
    match preference {
        SolverPreference::KrylovIlu0 => StationarySolver::Krylov(Preconditioner::Ilu0),
        SolverPreference::KrylovJacobi => StationarySolver::Krylov(Preconditioner::Jacobi),
        SolverPreference::GaussSeidel => StationarySolver::GaussSeidel,
    }
}

/// Builds the master-equation solver of a pure single-electron deck.
fn master_solver(netlist: &Netlist, options: &AnalysisOptions) -> Result<MasterEquation, SimError> {
    let system = tunnel_system_from_netlist(netlist)?;
    let mut solver = MasterEquation::new(system, options.temperature)?;
    if let Some(window) = options.master_window {
        solver = solver.with_window(window)?;
    }
    if let Some(max_states) = options.master_max_states {
        solver = solver.with_max_states(max_states)?;
    }
    if let Some(preference) = options.solver {
        solver = solver.with_solver(stationary_solver(preference));
    }
    Ok(solver)
}

/// Hybrid co-simulation options derived from the deck options: `events=`
/// switches the island domain to kinetic Monte-Carlo with that measurement
/// budget (per-point seeds are threaded in by the hybrid engines),
/// `window=` keeps the master-equation islands with that cap.
fn hybrid_options(options: &AnalysisOptions) -> Result<HybridOptions, SimError> {
    if options.master_max_states.is_some() {
        return Err(SimError::Plan(
            "maxstates= is not supported by the hybrid backend (its island domain does not \
             expose the state-enumeration cap); remove it or use engine=master"
                .into(),
        ));
    }
    if options.solver.is_some() {
        return Err(SimError::Plan(
            "solver= is not supported by the hybrid backend (its island domain does not \
             expose the stationary-solver choice); remove it or use engine=master"
                .into(),
        ));
    }
    let mut hybrid = HybridOptions::new(options.temperature);
    match (options.kmc_events, options.master_window) {
        (Some(_), Some(_)) => {
            return Err(SimError::Plan(
                "events= selects kinetic Monte-Carlo islands and window= master-equation \
                 islands; a hybrid run can only use one — remove one of the two options"
                    .into(),
            ))
        }
        (Some(events), None) => {
            hybrid.engine = IslandEngine::MonteCarlo {
                events,
                seed: options.seed,
            };
        }
        (None, Some(window)) => {
            hybrid.engine = IslandEngine::Master { window };
        }
        (None, None) => {}
    }
    Ok(hybrid)
}

/// The compiled stationary backend of a deck: one of the five engine
/// families behind the one [`StationaryEngine`] face.
#[derive(Debug, Clone)]
pub enum StationaryBackend {
    /// The closed-form analytic SET model.
    Analytic(AnalyticDeckEngine),
    /// The deterministic master-equation solver.
    Master(SourceMapped<MasterEquation>),
    /// The kinetic Monte-Carlo sampler (boxed: the simulator carries
    /// its live-state buffers inline).
    Kmc(Box<SourceMapped<MonteCarloSimulator>>),
    /// The SPICE Newton DC engine.
    Spice(SpiceDcEngine),
    /// The SPICE ↔ single-electron co-simulator.
    Hybrid(HybridStationaryEngine),
}

impl StationaryEngine for StationaryBackend {
    type Error = SimError;

    fn engine_name(&self) -> &'static str {
        match self {
            StationaryBackend::Analytic(e) => e.engine_name(),
            StationaryBackend::Master(e) => e.engine_name(),
            StationaryBackend::Kmc(e) => StationaryEngine::engine_name(e.as_ref()),
            StationaryBackend::Spice(e) => e.engine_name(),
            StationaryBackend::Hybrid(e) => e.engine_name(),
        }
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, SimError> {
        match self {
            StationaryBackend::Analytic(e) => e.resolve_control(name),
            StationaryBackend::Master(e) => e.resolve_control(name),
            StationaryBackend::Kmc(e) => e.resolve_control(name),
            StationaryBackend::Spice(e) => Ok(e.resolve_control(name)?),
            StationaryBackend::Hybrid(e) => Ok(e.resolve_control(name)?),
        }
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SimError> {
        match self {
            StationaryBackend::Analytic(e) => e.resolve_observable(name),
            StationaryBackend::Master(e) => e.resolve_observable(name),
            StationaryBackend::Kmc(e) => StationaryEngine::resolve_observable(e.as_ref(), name),
            StationaryBackend::Spice(e) => Ok(e.resolve_observable(name)?),
            StationaryBackend::Hybrid(e) => Ok(e.resolve_observable(name)?),
        }
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        match self {
            StationaryBackend::Analytic(e) => e.stationary_currents(controls, observables, seed),
            StationaryBackend::Master(e) => e.stationary_currents(controls, observables, seed),
            StationaryBackend::Kmc(e) => {
                StationaryEngine::stationary_currents(e.as_ref(), controls, observables, seed)
            }
            StationaryBackend::Spice(e) => {
                Ok(e.stationary_currents(controls, observables, seed)?)
            }
            StationaryBackend::Hybrid(e) => {
                Ok(e.stationary_currents(controls, observables, seed)?)
            }
        }
    }

    fn stationary_currents_ensemble(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        seeds: &[u64],
    ) -> Result<Vec<Vec<f64>>, SimError> {
        match self {
            // Only the KMC family has a batched lockstep path; the other
            // engines fall back to their default per-seed loop (which is
            // still the bit-identity reference the batch must match).
            StationaryBackend::Kmc(e) => StationaryEngine::stationary_currents_ensemble(
                e.as_ref(),
                controls,
                observables,
                seeds,
            ),
            other => seeds
                .iter()
                .map(|&seed| other.stationary_currents(controls, observables, seed))
                .collect(),
        }
    }

    fn has_batched_stationary_ensemble(&self) -> bool {
        match self {
            StationaryBackend::Kmc(e) => e.has_batched_stationary_ensemble(),
            _ => false,
        }
    }
}

/// The compiled transient backend of a deck.
#[derive(Debug, Clone)]
pub enum TransientBackend {
    /// The analytic SET, lifted quasi-statically.
    Analytic(QuasiStatic<AnalyticDeckEngine>),
    /// The master-equation solver, lifted quasi-statically.
    Master(QuasiStatic<SourceMapped<MasterEquation>>),
    /// The kinetic Monte-Carlo event clock (boxed: the simulator
    /// carries its live-state buffers inline).
    Kmc(Box<SourceMapped<MonteCarloSimulator>>),
    /// The SPICE backward-Euler integrator.
    Spice(SpiceTransientEngine),
    /// The hybrid co-simulator stepped along the stimulus.
    Hybrid(HybridTransientEngine),
}

impl TransientEngine for TransientBackend {
    type Error = SimError;

    fn engine_name(&self) -> &'static str {
        match self {
            TransientBackend::Analytic(_) => "analytic-set (quasi-static)",
            TransientBackend::Master(_) => "master-equation (quasi-static)",
            TransientBackend::Kmc(e) => TransientEngine::engine_name(e.as_ref()),
            TransientBackend::Spice(e) => e.engine_name(),
            TransientBackend::Hybrid(e) => e.engine_name(),
        }
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, SimError> {
        match self {
            TransientBackend::Analytic(e) => e.resolve_drive(name),
            TransientBackend::Master(e) => e.resolve_drive(name),
            TransientBackend::Kmc(e) => e.resolve_drive(name),
            TransientBackend::Spice(e) => Ok(e.resolve_drive(name)?),
            TransientBackend::Hybrid(e) => Ok(e.resolve_drive(name)?),
        }
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SimError> {
        match self {
            TransientBackend::Analytic(e) => TransientEngine::resolve_observable(e, name),
            TransientBackend::Master(e) => TransientEngine::resolve_observable(e, name),
            TransientBackend::Kmc(e) => TransientEngine::resolve_observable(e.as_ref(), name),
            TransientBackend::Spice(e) => Ok(TransientEngine::resolve_observable(e, name)?),
            TransientBackend::Hybrid(e) => Ok(TransientEngine::resolve_observable(e, name)?),
        }
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seed: u64,
    ) -> Result<TransientTrace, SimError> {
        match self {
            TransientBackend::Analytic(e) => e.transient_currents(drives, observables, times, seed),
            TransientBackend::Master(e) => e.transient_currents(drives, observables, times, seed),
            TransientBackend::Kmc(e) => e.transient_currents(drives, observables, times, seed),
            TransientBackend::Spice(e) => {
                Ok(e.transient_currents(drives, observables, times, seed)?)
            }
            TransientBackend::Hybrid(e) => {
                Ok(e.transient_currents(drives, observables, times, seed)?)
            }
        }
    }

    fn transient_currents_ensemble(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        seeds: &[u64],
    ) -> Result<Vec<TransientTrace>, SimError> {
        match self {
            TransientBackend::Kmc(e) => {
                e.transient_currents_ensemble(drives, observables, times, seeds)
            }
            other => seeds
                .iter()
                .map(|&seed| other.transient_currents(drives, observables, times, seed))
                .collect(),
        }
    }

    fn has_batched_transient_ensemble(&self) -> bool {
        match self {
            TransientBackend::Kmc(e) => e.has_batched_transient_ensemble(),
            _ => false,
        }
    }
}

/// Builds the stationary backend for the chosen engine.
///
/// # Errors
///
/// Propagates lowering and construction errors from the engine layers.
pub fn build_stationary(
    netlist: &Netlist,
    options: &AnalysisOptions,
    choice: crate::plan::EngineChoice,
) -> Result<StationaryBackend, SimError> {
    use crate::plan::EngineChoice;
    Ok(match choice {
        EngineChoice::Analytic => {
            StationaryBackend::Analytic(analytic_from_netlist(netlist, options.temperature)?)
        }
        EngineChoice::Master => {
            StationaryBackend::Master(SourceMapped::new(master_solver(netlist, options)?, netlist))
        }
        EngineChoice::Kmc => StationaryBackend::Kmc(Box::new(SourceMapped::new(
            kmc_simulator(netlist, options)?,
            netlist,
        ))),
        EngineChoice::Spice => StationaryBackend::Spice(SpiceDcEngine::new(
            Circuit::with_temperature(netlist, options.temperature)?,
            NewtonOptions::default(),
        )),
        EngineChoice::Hybrid => StationaryBackend::Hybrid(HybridStationaryEngine::new(
            netlist,
            hybrid_options(options)?,
        )?),
    })
}

/// Builds the transient backend for the chosen engine. `max_step` is the
/// integration ceiling of the SPICE backward-Euler backend (the `.tran`
/// step); the event-driven and quasi-static backends sample directly.
///
/// # Errors
///
/// Propagates lowering and construction errors from the engine layers.
pub fn build_transient(
    netlist: &Netlist,
    options: &AnalysisOptions,
    choice: crate::plan::EngineChoice,
    max_step: f64,
) -> Result<TransientBackend, SimError> {
    use crate::plan::EngineChoice;
    Ok(match choice {
        EngineChoice::Analytic => TransientBackend::Analytic(QuasiStatic::new(
            analytic_from_netlist(netlist, options.temperature)?,
        )),
        EngineChoice::Master => TransientBackend::Master(QuasiStatic::new(SourceMapped::new(
            master_solver(netlist, options)?,
            netlist,
        ))),
        EngineChoice::Kmc => TransientBackend::Kmc(Box::new(SourceMapped::new(
            kmc_simulator(netlist, options)?,
            netlist,
        ))),
        EngineChoice::Spice => TransientBackend::Spice(SpiceTransientEngine::new(
            Circuit::with_temperature(netlist, options.temperature)?,
            NewtonOptions::default(),
            max_step,
        )?),
        EngineChoice::Hybrid => TransientBackend::Hybrid(HybridTransientEngine::new(
            netlist,
            hybrid_options(options)?,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;
    use se_units::constants::E;

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n";

    #[test]
    fn source_map_translates_sweep_names() {
        let netlist = parse_deck(SET_DECK).unwrap();
        let engine = SourceMapped::new(
            master_solver(&netlist, &AnalysisOptions::default()).unwrap(),
            &netlist,
        );
        // Source names and electrode names both resolve, to the same handle.
        let by_source = engine.resolve_control("VD").unwrap();
        let by_node = engine.resolve_control("drain").unwrap();
        assert_eq!(by_source, by_node);
        assert!(engine.resolve_control("VX").is_err());
        assert!(StationaryEngine::resolve_observable(&engine, "J1").is_ok());
    }

    #[test]
    fn analytic_lowering_matches_the_master_equation() {
        let netlist = parse_deck(SET_DECK).unwrap();
        let options = AnalysisOptions::default();
        let analytic = analytic_from_netlist(&netlist, options.temperature).unwrap();
        let master = SourceMapped::new(master_solver(&netlist, &options).unwrap(), &netlist);

        let vg_peak = E / (2.0 * 1e-18);
        for (engine_currents, label) in [
            (
                {
                    let gate = analytic.resolve_control("VG").unwrap();
                    let j1 = analytic.resolve_observable("J1").unwrap();
                    analytic
                        .stationary_current(&[(gate, vg_peak)], j1, 0)
                        .unwrap()
                },
                "analytic",
            ),
            (
                {
                    let gate = master.resolve_control("VG").unwrap();
                    let j1 = StationaryEngine::resolve_observable(&master, "J1").unwrap();
                    master
                        .stationary_current(&[(gate, vg_peak)], j1, 0)
                        .unwrap()
                },
                "master",
            ),
        ] {
            assert!(
                engine_currents > 0.0,
                "{label} current at the conductance peak must be positive"
            );
        }

        let gate_a = analytic.resolve_control("VG").unwrap();
        let j1_a = analytic.resolve_observable("J1").unwrap();
        let i_analytic = analytic
            .stationary_current(&[(gate_a, vg_peak)], j1_a, 0)
            .unwrap();
        let gate_m = master.resolve_control("VG").unwrap();
        let j1_m = StationaryEngine::resolve_observable(&master, "J1").unwrap();
        let i_master = master
            .stationary_current(&[(gate_m, vg_peak)], j1_m, 0)
            .unwrap();
        let rel = (i_analytic - i_master).abs() / i_master.abs();
        assert!(
            rel < 0.05,
            "analytic {i_analytic} vs master {i_master} ({rel:.3} rel)"
        );
        // Both junctions report the same series current, same sign.
        let j2_a = analytic.resolve_observable("J2").unwrap();
        let i_j2 = analytic
            .stationary_current(&[(gate_a, vg_peak)], j2_a, 0)
            .unwrap();
        assert_eq!(i_j2, i_analytic);
    }

    #[test]
    fn hybrid_options_honour_events_and_reject_contradictions() {
        let events = AnalysisOptions {
            kmc_events: Some(12_000),
            seed: 9,
            ..AnalysisOptions::default()
        };
        let built = hybrid_options(&events).unwrap();
        assert_eq!(
            built.engine,
            IslandEngine::MonteCarlo {
                events: 12_000,
                seed: 9
            }
        );

        let window = AnalysisOptions {
            master_window: Some(5),
            ..AnalysisOptions::default()
        };
        assert_eq!(
            hybrid_options(&window).unwrap().engine,
            IslandEngine::Master { window: 5 }
        );

        let both = AnalysisOptions {
            kmc_events: Some(1000),
            master_window: Some(5),
            ..AnalysisOptions::default()
        };
        let err = hybrid_options(&both).unwrap_err();
        assert!(err.to_string().contains("only use one"), "{err}");

        let max_states = AnalysisOptions {
            master_max_states: Some(1000),
            ..AnalysisOptions::default()
        };
        let err = hybrid_options(&max_states).unwrap_err();
        assert!(err.to_string().contains("maxstates"), "{err}");

        let solver = AnalysisOptions {
            solver: Some(SolverPreference::GaussSeidel),
            ..AnalysisOptions::default()
        };
        let err = hybrid_options(&solver).unwrap_err();
        assert!(err.to_string().contains("solver"), "{err}");
    }

    #[test]
    fn deck_solver_preference_reaches_the_master_equation() {
        let netlist = parse_deck(SET_DECK).unwrap();
        let default = master_solver(&netlist, &AnalysisOptions::default()).unwrap();
        assert_eq!(
            default.solver(),
            StationarySolver::Krylov(Preconditioner::Ilu0)
        );
        for (preference, expected) in [
            (
                SolverPreference::KrylovIlu0,
                StationarySolver::Krylov(Preconditioner::Ilu0),
            ),
            (
                SolverPreference::KrylovJacobi,
                StationarySolver::Krylov(Preconditioner::Jacobi),
            ),
            (SolverPreference::GaussSeidel, StationarySolver::GaussSeidel),
        ] {
            let options = AnalysisOptions {
                solver: Some(preference),
                ..AnalysisOptions::default()
            };
            let solver = master_solver(&netlist, &options).unwrap();
            assert_eq!(solver.solver(), expected);
        }
    }

    #[test]
    fn analytic_lowering_rejects_non_set_shapes() {
        // Double dot: two islands.
        let double = parse_deck(
            "dd\nVS s 0 1m\nVG1 g1 0 0\nVG2 g2 0 0\nJ1 s i1 C=1a R=100k\nJ2 i1 i2 C=1a R=100k\nJ3 i2 0 C=1a R=100k\nCG1 g1 i1 0.5a\nCG2 g2 i2 0.5a\n",
        )
        .unwrap();
        let err = analytic_from_netlist(&double, 1.0).unwrap_err();
        assert!(err.to_string().contains("island"), "{err}");

        // Mixed deck: load resistor.
        let mixed = parse_deck(
            "mixed\nVDD vdd 0 5m\nVG gate 0 0\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n",
        )
        .unwrap();
        let err = analytic_from_netlist(&mixed, 1.0).unwrap_err();
        assert!(err.to_string().contains("RL"), "{err}");

        // No grounded junction.
        let floating = parse_deck(
            "f\nVD d 0 1m\nVS s 0 0\nVG g 0 0\nJ1 d island C=0.5a R=100k\nJ2 island s C=0.5a R=100k\nCG g island 1a\n",
        )
        .unwrap();
        let err = analytic_from_netlist(&floating, 1.0).unwrap_err();
        assert!(
            err.to_string().contains("grounded source junction"),
            "{err}"
        );
    }
}
