//! Multi-deck batch execution: any number of decks, one shared scheduler.
//!
//! Every analysis of every deck becomes one substrate job, and all of them
//! share a single chunked worker pool ([`se_exec::run_batch`]) — so a
//! directory of small decks saturates a machine just as well as one huge
//! sweep, and a failing deck never takes its neighbours down. Per-deck
//! failures (compile errors, solve errors, export I/O) are reported in the
//! per-deck [`BatchOutcome`]; per-deck CSV exports are spliced as
//! `out-<deck>.csv`, and checkpoint/resume works per analysis exactly as
//! in single-deck execution.

use crate::error::SimError;
use crate::exec::{prepare_deck, run_prepared, ExecOptions};
use crate::plan::compile;
use crate::result::SimulationResult;
use se_netlist::Deck;

/// What one deck of a batch produced.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The deck's batch name (used for progress labels, checkpoint ids and
    /// CSV splicing).
    pub name: String,
    /// One result table per analysis, or the deck's first error.
    pub results: Result<Vec<SimulationResult>, SimError>,
}

/// Splices a deck name into an export base path: `out.csv` + `staircase` →
/// `out-staircase.csv` (per-analysis `-2`, `-3`, … suffixes are appended
/// on top by [`crate::exec::export_path`]).
#[must_use]
pub fn deck_export_base(base: &str, deck: &str) -> String {
    crate::exec::splice_export_suffix(base, deck)
}

/// Runs every deck's every analysis through one shared worker pool.
///
/// `decks` pairs a display name (a file stem, say) with a parsed deck; the
/// name prefixes progress labels and checkpoint job ids and is spliced
/// into CSV export paths. The outcomes come back in input order, one per
/// deck, with failures contained per deck.
pub fn run_deck_batch(decks: Vec<(String, Deck)>, options: &ExecOptions) -> Vec<BatchOutcome> {
    let mut names = Vec::with_capacity(decks.len());
    let groups = decks
        .iter()
        .map(|(name, deck)| {
            names.push(name.clone());
            let plan = compile(deck)?;
            let per_deck = ExecOptions {
                csv: options
                    .csv
                    .as_ref()
                    .map(|base| deck_export_base(base, name)),
                label: Some(name.clone()),
                ..options.clone()
            };
            prepare_deck(deck, &plan, name, &per_deck)
        })
        .collect();
    names
        .into_iter()
        .zip(run_prepared(groups, options))
        .map(|(name, results)| BatchOutcome { name, results })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_full_deck;

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.options temp=1 seed=3\n.dc VG 0 0.16 16m\n.print dc i(J1)\n";

    #[test]
    fn deck_export_bases_are_spliced_before_the_extension() {
        assert_eq!(deck_export_base("out.csv", "a"), "out-a.csv");
        assert_eq!(
            deck_export_base("runs.v1/out.csv", "a"),
            "runs.v1/out-a.csv"
        );
        assert_eq!(deck_export_base("out", "a"), "out-a");
    }

    #[test]
    fn batches_isolate_per_deck_failures() {
        let good = parse_full_deck(SET_DECK).unwrap();
        let bad = parse_full_deck(&SET_DECK.replace(".dc VG 0 0.16 16m\n", "")).unwrap();
        let outcomes = run_deck_batch(
            vec![
                ("good".to_string(), good.clone()),
                ("bad".to_string(), bad),
                ("also-good".to_string(), good),
            ],
            &ExecOptions::default(),
        );
        assert_eq!(outcomes.len(), 3);
        let tables = outcomes[0].results.as_ref().unwrap();
        assert_eq!(tables[0].column("I(J1)").unwrap().len(), 11);
        let err = outcomes[1].results.as_ref().unwrap_err();
        assert!(err.to_string().contains("no analyses"), "{err}");
        assert!(outcomes[2].results.is_ok());
        assert_eq!(outcomes[0].name, "good");
    }

    #[test]
    fn batch_results_match_single_deck_execution() {
        let deck = parse_full_deck(SET_DECK).unwrap();
        let plan = compile(&deck).unwrap();
        let single = crate::exec::execute(&deck, &plan).unwrap();
        let outcomes = run_deck_batch(
            vec![("one".into(), deck.clone()), ("two".into(), deck)],
            &ExecOptions::default(),
        );
        for outcome in outcomes {
            let tables = outcome.results.unwrap();
            assert_eq!(tables[0].rows(), single[0].rows());
        }
    }
}
