//! The unified error type of the deck pipeline.

use se_engine::{GridError, WaveformError};
use se_hybrid::HybridError;
use se_montecarlo::MonteCarloError;
use se_netlist::NetlistError;
use se_orthodox::OrthodoxError;
use se_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors of deck compilation and execution — every backend's error plus
/// the compiler's own planning failures.
#[derive(Debug)]
pub enum SimError {
    /// Netlist parsing / validation failed.
    Netlist(NetlistError),
    /// The orthodox physics layer (analytic SET) failed.
    Orthodox(OrthodoxError),
    /// The Monte-Carlo / master-equation layer failed.
    MonteCarlo(MonteCarloError),
    /// The SPICE layer failed.
    Spice(SpiceError),
    /// The hybrid co-simulator failed.
    Hybrid(HybridError),
    /// A sweep or sample grid could not be built.
    Grid(GridError),
    /// A stimulus waveform was invalid.
    Waveform(WaveformError),
    /// The deck could not be compiled onto an engine (engine selection,
    /// probe resolution, unsupported analysis for the chosen backend, …).
    Plan(String),
    /// The execution substrate failed outside the solver: a result sink or
    /// checkpoint I/O error, or a cooperative cancellation.
    Exec(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
            SimError::Orthodox(e) => write!(f, "analytic SET error: {e}"),
            SimError::MonteCarlo(e) => write!(f, "monte-carlo error: {e}"),
            SimError::Spice(e) => write!(f, "spice error: {e}"),
            SimError::Hybrid(e) => write!(f, "hybrid error: {e}"),
            SimError::Grid(e) => write!(f, "grid error: {e}"),
            SimError::Waveform(e) => write!(f, "waveform error: {e}"),
            SimError::Plan(message) => write!(f, "plan error: {message}"),
            SimError::Exec(message) => write!(f, "execution error: {message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            SimError::Orthodox(e) => Some(e),
            SimError::MonteCarlo(e) => Some(e),
            SimError::Spice(e) => Some(e),
            SimError::Hybrid(e) => Some(e),
            SimError::Grid(e) => Some(e),
            SimError::Waveform(e) => Some(e),
            SimError::Plan(_) | SimError::Exec(_) => None,
        }
    }
}

/// Flattens a substrate error: solver failures unwrap to the inner
/// [`SimError`]; sink, checkpoint and cancellation failures become
/// [`SimError::Exec`].
impl From<se_exec::ExecError<SimError>> for SimError {
    fn from(e: se_exec::ExecError<SimError>) -> Self {
        match e {
            se_exec::ExecError::Job { error, .. } => error,
            other => SimError::Exec(other.to_string()),
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

impl From<OrthodoxError> for SimError {
    fn from(e: OrthodoxError) -> Self {
        SimError::Orthodox(e)
    }
}

impl From<MonteCarloError> for SimError {
    fn from(e: MonteCarloError) -> Self {
        SimError::MonteCarlo(e)
    }
}

impl From<SpiceError> for SimError {
    fn from(e: SpiceError) -> Self {
        SimError::Spice(e)
    }
}

impl From<HybridError> for SimError {
    fn from(e: HybridError) -> Self {
        SimError::Hybrid(e)
    }
}

impl From<GridError> for SimError {
    fn from(e: GridError) -> Self {
        SimError::Grid(e)
    }
}

impl From<WaveformError> for SimError {
    fn from(e: WaveformError) -> Self {
        SimError::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        let err = SimError::Plan("no engine fits".into());
        assert!(err.to_string().contains("no engine fits"));
        assert!(err.source().is_none());
        let wrapped = SimError::from(GridError::TooFewPoints(1));
        assert!(wrapped.source().is_some());
    }
}
