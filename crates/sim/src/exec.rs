//! The plan executor: runs every planned analysis through the parallel
//! runners and collects [`SimulationResult`] tables.

use crate::backend::{build_stationary, build_transient, StationaryBackend};
use crate::error::SimError;
use crate::plan::{PlannedAnalysis, PlannedRun, SimulationPlan};
use crate::result::SimulationResult;
use se_engine::{
    ObservableId, StationaryEngine, SweepRunner, TransientEngine, TransientRunner, Waveform,
};
use se_netlist::Deck;

/// Executes a compiled plan against its deck, fanning bias points and
/// samples out across all cores.
///
/// Every run uses the deck seed through the shared SplitMix64 discipline
/// of [`SweepRunner`] / [`TransientRunner`], so results are bit-identical
/// to [`execute_serial`].
///
/// # Errors
///
/// Propagates backend construction and solve errors.
pub fn execute(deck: &Deck, plan: &SimulationPlan) -> Result<Vec<SimulationResult>, SimError> {
    execute_with(deck, plan, true)
}

/// Single-threaded [`execute`] (identical results; useful for profiling
/// and determinism tests).
///
/// # Errors
///
/// See [`execute`].
pub fn execute_serial(
    deck: &Deck,
    plan: &SimulationPlan,
) -> Result<Vec<SimulationResult>, SimError> {
    execute_with(deck, plan, false)
}

fn execute_with(
    deck: &Deck,
    plan: &SimulationPlan,
    parallel: bool,
) -> Result<Vec<SimulationResult>, SimError> {
    plan.runs
        .iter()
        .map(|run| execute_run(deck, plan, run, parallel))
        .collect()
}

/// Provenance metadata shared by every result of a plan.
fn metadata(plan: &SimulationPlan, run: &PlannedRun, engine_name: &str) -> Vec<(String, String)> {
    vec![
        ("deck".into(), plan.title.clone()),
        ("engine".into(), engine_name.to_string()),
        ("engine_choice".into(), run.engine.name().to_string()),
        ("rationale".into(), run.rationale.clone()),
        ("temperature_k".into(), format!("{:?}", plan.temperature)),
        ("seed".into(), plan.seed.to_string()),
    ]
}

fn execute_run(
    deck: &Deck,
    plan: &SimulationPlan,
    run: &PlannedRun,
    parallel: bool,
) -> Result<SimulationResult, SimError> {
    match &run.analysis {
        PlannedAnalysis::Sweep { control, values } => {
            let backend = build_stationary(&deck.netlist, &deck.options, run.engine)?;
            let runner = sweep_runner(plan.seed, parallel);
            let control_id = backend.resolve_control(control)?;
            let observable_ids = resolve_stationary_observables(&backend, &run.observables)?;
            let rows = runner.map_points(values.len(), |index, seed| {
                let currents = backend.stationary_currents(
                    &[(control_id, values[index])],
                    &observable_ids,
                    seed,
                )?;
                let mut row = Vec::with_capacity(1 + currents.len());
                row.push(values[index]);
                row.extend(currents);
                Ok::<_, SimError>(row)
            })?;
            let mut columns = vec![control.clone()];
            columns.extend(current_columns(&run.observables));
            Ok(SimulationResult::new(
                run.label.clone(),
                backend.engine_name(),
                columns,
                rows,
                metadata(plan, run, backend.engine_name()),
            ))
        }
        PlannedAnalysis::Map {
            outer_control,
            outer_values,
            inner_control,
            inner_values,
        } => {
            let backend = build_stationary(&deck.netlist, &deck.options, run.engine)?;
            let runner = sweep_runner(plan.seed, parallel);
            let outer_id = backend.resolve_control(outer_control)?;
            let inner_id = backend.resolve_control(inner_control)?;
            let observable_ids = resolve_stationary_observables(&backend, &run.observables)?;
            let n_inner = inner_values.len();
            let rows = runner.map_points(outer_values.len() * n_inner, |index, seed| {
                let outer_value = outer_values[index / n_inner];
                let inner_value = inner_values[index % n_inner];
                let currents = backend.stationary_currents(
                    &[(outer_id, outer_value), (inner_id, inner_value)],
                    &observable_ids,
                    seed,
                )?;
                let mut row = Vec::with_capacity(2 + currents.len());
                row.push(outer_value);
                row.push(inner_value);
                row.extend(currents);
                Ok::<_, SimError>(row)
            })?;
            let mut columns = vec![outer_control.clone(), inner_control.clone()];
            columns.extend(current_columns(&run.observables));
            Ok(SimulationResult::new(
                run.label.clone(),
                backend.engine_name(),
                columns,
                rows,
                metadata(plan, run, backend.engine_name()),
            ))
        }
        PlannedAnalysis::Transient { step, times } => {
            let backend = build_transient(&deck.netlist, &deck.options, run.engine, *step)?;
            let runner = transient_runner(plan.seed, parallel);
            let drives: Vec<(&str, Waveform)> = deck
                .waveforms
                .iter()
                .map(|(name, waveform)| (name.as_str(), waveform.clone()))
                .collect();
            let observables: Vec<&str> = run.observables.iter().map(String::as_str).collect();
            let trace = runner.run(&backend, &drives, &observables, times)?;
            let rows: Vec<Vec<f64>> = (0..trace.len())
                .map(|index| {
                    let mut row = Vec::with_capacity(1 + run.observables.len());
                    row.push(trace.times()[index]);
                    row.extend_from_slice(trace.row(index));
                    row
                })
                .collect();
            let mut columns = vec!["t".to_string()];
            columns.extend(current_columns(&run.observables));
            Ok(SimulationResult::new(
                run.label.clone(),
                backend.engine_name(),
                columns,
                rows,
                metadata(plan, run, backend.engine_name()),
            ))
        }
    }
}

fn sweep_runner(seed: u64, parallel: bool) -> SweepRunner {
    let runner = SweepRunner::new().with_seed(seed);
    if parallel {
        runner
    } else {
        runner.serial()
    }
}

fn transient_runner(seed: u64, parallel: bool) -> TransientRunner {
    let runner = TransientRunner::new().with_seed(seed);
    if parallel {
        runner
    } else {
        runner.serial()
    }
}

fn resolve_stationary_observables(
    backend: &StationaryBackend,
    names: &[String],
) -> Result<Vec<ObservableId>, SimError> {
    names
        .iter()
        .map(|name| backend.resolve_observable(name))
        .collect()
}

/// Column names of the observable currents: `I(J1)`, `I(VD)`, …
fn current_columns(observables: &[String]) -> Vec<String> {
    observables
        .iter()
        .map(|name| format!("I({name})"))
        .collect()
}
