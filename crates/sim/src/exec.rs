//! The plan executor: runs every planned analysis of a deck concurrently
//! through the [`se_exec`] job substrate and collects [`SimulationResult`]
//! tables.
//!
//! Each planned run becomes one substrate job whose items are output rows
//! (bias points for `.dc` — grouped into warm-started
//! [`MASTER_WARM_BLOCK`]-point blocks on the master-equation backend —
//! one whole trace for `.tran`); all of a deck's
//! jobs — and, in batch mode, all decks' jobs — share **one** chunked
//! worker pool ([`se_exec::run_batch`]). Per-item seeds follow the shared
//! SplitMix64 discipline through [`se_exec::JobSpec::item_seed`], so
//! serial, parallel, chunked and checkpoint-resumed executions are all
//! bit-identical. [`ExecOptions`] adds the substrate features on top of
//! the plain [`execute`] API: worker/chunk control, streamed CSV export,
//! throttled progress reporting, cooperative cancellation and
//! checkpoint/resume.

use crate::backend::{build_stationary, build_transient, StationaryBackend, TransientBackend};
use crate::error::SimError;
use crate::plan::{PlannedAnalysis, PlannedRun, SimulationPlan};
use crate::result::{SimulationResult, SolverEffort};
use se_engine::{
    derive_seed, ControlId, ObservableId, StationaryEngine, TransientEngine, Waveform,
};
use se_exec::{
    lane_group_count, lane_group_range, run_batch, CancelToken, CheckpointStore, ChunkTask,
    CsvSink, JobBuilder, JobSpec, ProgressSink, Tee, Workers,
};
use se_montecarlo::{MasterSolution, MasterSolveStats};
use se_netlist::Deck;
use std::fs::File;
use std::io::{BufWriter, Stderr};
use std::path::PathBuf;
use std::sync::Mutex;

/// Substrate settings for deck execution. [`Default`] reproduces the plain
/// [`execute`] behaviour: all cores, automatic chunking, no export, no
/// checkpoint, no progress output.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker policy of the shared pool.
    pub workers: Workers,
    /// Explicit chunk size (items per scheduled task); `None` = automatic.
    pub chunk: Option<usize>,
    /// Checkpoint directory: completed chunks are persisted here.
    pub checkpoint: Option<PathBuf>,
    /// With a checkpoint directory: restore completed chunks instead of
    /// recomputing them (the resumed tables are bit-identical).
    pub resume: bool,
    /// Print throttled per-analysis progress lines to stderr.
    pub progress: bool,
    /// Stream results to CSV while running: the base path; analysis 2, 3,…
    /// get `-2`, `-3` suffixes (see [`export_path`]).
    pub csv: Option<String>,
    /// Label prefix for progress lines and checkpoint job ids (defaults to
    /// the deck title).
    pub label: Option<String>,
    /// Cooperative cancellation: when the token fires, workers stop, and a
    /// checkpointed run can later resume from the completed chunks.
    pub cancel: Option<CancelToken>,
    /// Force `.options repeats=` ensembles through the per-seed scalar
    /// loop instead of the batched lockstep engine. The batched path is
    /// bit-identical by contract; this switch exists so the determinism
    /// gate can *prove* it by diffing the two executions.
    pub scalar_ensemble: bool,
    /// Replicas per ensemble lane group (`None` = [`DEFAULT_LANE_WIDTH`]):
    /// each bias point's `repeats` replicas shard into
    /// `ceil(repeats / width)` work items on the shared pool, so an
    /// ensemble spreads across cores instead of running as one serial
    /// batch. Replica `k` is always seeded `derive_seed(point_seed, k)`
    /// whatever the width, and group results recombine in plain replica
    /// order — the published tables are byte-identical across widths (and
    /// across `--jobs` and the scalar fallback).
    pub lane_width: Option<usize>,
}

/// The default ensemble lane width: replicas per lane-group work item.
/// Eight `f64` lanes fill one AVX-512 vector (two AVX2 vectors) in the
/// batched engine's SoA planes, while a 16-replica deck ensemble still
/// splits into two schedulable items.
pub const DEFAULT_LANE_WIDTH: usize = 8;

/// Bias points per work item on warm-started master-equation sweeps and
/// maps: the first point of every block cold-starts, the rest warm-start
/// from their predecessor's converged distribution. The block is the
/// *work item* — never the chunk — so the warm-start chain layout depends
/// only on the point count, and serial, parallel, chunked and resumed
/// executions publish byte-identical tables.
pub const MASTER_WARM_BLOCK: usize = 8;

/// Commutative accumulator of per-solve [`MasterSolveStats`]: sums, a max
/// and a name-agreement check only, so concurrent work items merging in
/// any order produce the same aggregate as a serial run.
#[derive(Debug, Default)]
struct SolverAgg {
    solver: Option<&'static str>,
    solves: usize,
    warm_solves: usize,
    iterations: usize,
    residual_max: f64,
}

impl SolverAgg {
    fn record(&mut self, stats: &MasterSolveStats) {
        self.solver = match self.solver {
            None => Some(stats.solver),
            Some(name) if name == stats.solver => Some(name),
            Some(_) => Some("mixed"),
        };
        self.solves += 1;
        self.iterations += stats.iterations;
        if stats.residual > self.residual_max {
            self.residual_max = stats.residual;
        }
        if stats.warm_started {
            self.warm_solves += 1;
        }
    }

    fn effort(&self) -> Option<SolverEffort> {
        let solver = self.solver?;
        Some(SolverEffort {
            solver: solver.to_string(),
            solves: self.solves,
            warm_solves: self.warm_solves,
            iterations: self.iterations,
            residual_max: self.residual_max,
        })
    }
}

/// Executes a compiled plan against its deck: every analysis runs as one
/// job on the shared chunked worker pool, fanning bias points and traces
/// out across all cores.
///
/// Every run uses the deck seed through the shared SplitMix64 discipline
/// of [`se_exec::JobSpec`], so results are bit-identical to
/// [`execute_serial`] (and to any chunking or resume configuration).
///
/// # Errors
///
/// Propagates backend construction and solve errors.
pub fn execute(deck: &Deck, plan: &SimulationPlan) -> Result<Vec<SimulationResult>, SimError> {
    execute_with_options(deck, plan, &ExecOptions::default())
}

/// Single-threaded [`execute`] (identical results; useful for profiling
/// and determinism tests).
///
/// # Errors
///
/// See [`execute`].
pub fn execute_serial(
    deck: &Deck,
    plan: &SimulationPlan,
) -> Result<Vec<SimulationResult>, SimError> {
    execute_with_options(
        deck,
        plan,
        &ExecOptions {
            workers: Workers::Serial,
            ..ExecOptions::default()
        },
    )
}

/// [`execute`] with full substrate control: workers, chunking, streamed
/// CSV, progress, cancellation and checkpoint/resume.
///
/// # Errors
///
/// Propagates backend construction and solve errors, plus sink/checkpoint
/// I/O failures and cancellation as [`SimError::Exec`].
pub fn execute_with_options(
    deck: &Deck,
    plan: &SimulationPlan,
    options: &ExecOptions,
) -> Result<Vec<SimulationResult>, SimError> {
    let label = options.label.clone().unwrap_or_else(|| plan.title.clone());
    let jobs = prepare_deck(deck, plan, &label, options)?;
    run_prepared(vec![Ok(jobs)], options)
        .pop()
        .expect("one outcome per prepared group")
}

/// Provenance metadata shared by every result of a plan. `solver` is the
/// configured stationary solver of master-equation runs — configuration,
/// not measurement, so it is identical across serial, parallel, chunked
/// and resumed executions (runtime effort lives in
/// [`SimulationResult::solver_effort`] instead).
fn metadata(
    plan: &SimulationPlan,
    run: &PlannedRun,
    engine_name: &str,
    solver: Option<&'static str>,
) -> Vec<(String, String)> {
    let mut metadata = vec![
        ("deck".into(), plan.title.clone()),
        ("engine".into(), engine_name.to_string()),
        ("engine_choice".into(), run.engine.name().to_string()),
        ("rationale".into(), run.rationale.clone()),
        ("temperature_k".into(), format!("{:?}", plan.temperature)),
        ("seed".into(), plan.seed.to_string()),
    ];
    if let Some(solver) = solver {
        metadata.push(("solver".into(), solver.to_string()));
    }
    if let Some(repeats) = plan.repeats {
        metadata.push(("repeats".into(), repeats.to_string()));
    }
    metadata
}

/// The backend-bound form of one planned analysis: resolved handles plus
/// the owned grids the solve closure walks.
enum PreparedKind {
    Sweep {
        backend: StationaryBackend,
        control: ControlId,
        observables: Vec<ObservableId>,
        values: Vec<f64>,
    },
    Map {
        backend: StationaryBackend,
        outer: ControlId,
        inner: ControlId,
        observables: Vec<ObservableId>,
        outer_values: Vec<f64>,
        inner_values: Vec<f64>,
    },
    Transient {
        backend: TransientBackend,
        drives: Vec<(ControlId, Waveform)>,
        observables: Vec<ObservableId>,
        times: Vec<f64>,
    },
}

/// One fully prepared run: everything a substrate job needs, owned.
pub(crate) struct PreparedJob {
    kind: PreparedKind,
    /// Table label (the analysis directive).
    pub(crate) result_label: String,
    /// Progress label and checkpoint job id.
    pub(crate) job_label: String,
    pub(crate) columns: Vec<String>,
    pub(crate) metadata: Vec<(String, String)>,
    /// Seed-ensemble size per bias point (`.options repeats=`); `None` =
    /// single-shot rows.
    repeats: Option<usize>,
    /// Route ensembles through the per-seed scalar loop (the determinism
    /// gate's reference execution) instead of the batched engine.
    scalar_ensemble: bool,
    /// Output points (bias points for sweeps/maps, 1 for transients). For
    /// ensembles the job fans out further: `spec.items()` is
    /// `points * groups_per_point`.
    points: usize,
    /// Lane groups per point: `ceil(repeats / lane_width)`, 1 when not an
    /// ensemble.
    groups_per_point: usize,
    /// Bias points per work item: [`MASTER_WARM_BLOCK`] on warm-started
    /// master-equation sweeps/maps, 1 everywhere else. Mutually exclusive
    /// with ensembles (`groups_per_point > 1`).
    points_per_item: usize,
    /// Replicas per lane group (see [`DEFAULT_LANE_WIDTH`]).
    lane_width: usize,
    /// Runtime solver-effort aggregation of warm-blocked master runs
    /// (`None` for every other kind of run).
    solver_stats: Option<Mutex<SolverAgg>>,
    /// The plan seed: grouped items re-derive their *point* seed from it so
    /// replica seeding is independent of the lane width.
    base_seed: u64,
    pub(crate) spec: JobSpec,
    /// Streamed CSV target, if exporting.
    csv_path: Option<String>,
    /// Deck-content fingerprint stamped into checkpoints, so a resume
    /// against an *edited* deck with unchanged geometry is refused.
    fingerprint: u64,
}

impl PreparedKind {
    fn engine_name(&self) -> &'static str {
        match self {
            PreparedKind::Sweep { backend, .. } | PreparedKind::Map { backend, .. } => {
                backend.engine_name()
            }
            PreparedKind::Transient { backend, .. } => backend.engine_name(),
        }
    }
}

impl PreparedJob {
    pub(crate) fn engine_name(&self) -> &'static str {
        self.kind.engine_name()
    }

    /// Solves work item `index`. Without an ensemble an item is one bias
    /// point (one row) for sweeps and maps, the whole trace (all rows) for
    /// transients. With an ensemble (`.options repeats=`) every point
    /// shards into [`Self::groups_per_point`] lane groups — item `index`
    /// is `(point, group) = (index / groups, index % groups)` — and the
    /// item returns the group's **raw replica rows** (no prefix, no
    /// mean/stderr): replica `k` of the point always runs under seed
    /// [`derive_seed`]`(point_seed, k)`, whatever the lane width, and
    /// recombination into published rows happens downstream (the sink's
    /// [`PointCombiner`] and [`Self::assemble`]).
    pub(crate) fn solve_item(&self, index: usize, seed: u64) -> Result<Vec<Vec<f64>>, SimError> {
        if self.points_per_item > 1 {
            return self.master_block_rows(index);
        }
        let point = index / self.groups_per_point;
        let group = index % self.groups_per_point;
        // Grouped items derive their seeds from the *point*, not the item,
        // so the replica streams do not depend on the lane width. With one
        // group per point the two coincide: `seed` already is
        // `derive_seed(base_seed, point)`.
        let point_seed = if self.groups_per_point == 1 {
            seed
        } else {
            derive_seed(self.base_seed, point as u64)
        };
        match &self.kind {
            PreparedKind::Sweep {
                backend,
                control,
                observables,
                values,
            } => {
                let value = values[point];
                let controls = [(*control, value)];
                if self.repeats.is_some() {
                    self.stationary_group_rows(backend, &controls, observables, point_seed, group)
                } else {
                    let currents =
                        backend.stationary_currents(&controls, observables, point_seed)?;
                    Ok(vec![single_row(&[value], currents)])
                }
            }
            PreparedKind::Map {
                backend,
                outer,
                inner,
                observables,
                outer_values,
                inner_values,
            } => {
                let n_inner = inner_values.len();
                let outer_value = outer_values[point / n_inner];
                let inner_value = inner_values[point % n_inner];
                let controls = [(*outer, outer_value), (*inner, inner_value)];
                if self.repeats.is_some() {
                    self.stationary_group_rows(backend, &controls, observables, point_seed, group)
                } else {
                    let currents =
                        backend.stationary_currents(&controls, observables, point_seed)?;
                    Ok(vec![single_row(&[outer_value, inner_value], currents)])
                }
            }
            PreparedKind::Transient {
                backend,
                drives,
                observables,
                times,
            } => {
                if self.repeats.is_none() {
                    let trace =
                        backend.transient_currents(drives, observables, times, point_seed)?;
                    return Ok((0..trace.len())
                        .map(|i| single_row(&[trace.times()[i]], trace.row(i).to_vec()))
                        .collect());
                }
                self.transient_group_rows(backend, drives, observables, times, point_seed, group)
            }
        }
    }

    /// One warm-started block of a master-equation sweep or map: work item
    /// `index` covers bias points `index * points_per_item ..` (up to a
    /// short tail block). The first point of the block cold-starts; every
    /// later point seeds the solver with its predecessor's converged
    /// distribution. Because the chain never crosses an item boundary, the
    /// published rows depend only on the point grid — not on chunking,
    /// worker count or resume.
    fn master_block_rows(&self, index: usize) -> Result<Vec<Vec<f64>>, SimError> {
        let start = index * self.points_per_item;
        let end = self.points.min(start + self.points_per_item);
        let mut rows = Vec::with_capacity(end - start);
        let mut warm: Option<MasterSolution> = None;
        for point in start..end {
            let ((currents, solution), prefix) = match &self.kind {
                PreparedKind::Sweep {
                    backend: StationaryBackend::Master(engine),
                    control,
                    observables,
                    values,
                } => {
                    let value = values[point];
                    (
                        engine.inner().stationary_currents_warm(
                            &[(*control, value)],
                            observables,
                            warm.as_ref(),
                        )?,
                        vec![value],
                    )
                }
                PreparedKind::Map {
                    backend: StationaryBackend::Master(engine),
                    outer,
                    inner,
                    observables,
                    outer_values,
                    inner_values,
                } => {
                    let n_inner = inner_values.len();
                    let outer_value = outer_values[point / n_inner];
                    let inner_value = inner_values[point % n_inner];
                    (
                        engine.inner().stationary_currents_warm(
                            &[(*outer, outer_value), (*inner, inner_value)],
                            observables,
                            warm.as_ref(),
                        )?,
                        vec![outer_value, inner_value],
                    )
                }
                _ => {
                    return Err(SimError::Exec(
                        "internal error: a warm-block work item was scheduled for a run that \
                         is not a master-equation sweep or map"
                            .into(),
                    ))
                }
            };
            if let Some(stats) = &self.solver_stats {
                stats
                    .lock()
                    .expect("solver stats mutex poisoned")
                    .record(solution.stats());
            }
            rows.push(single_row(&prefix, currents));
            warm = Some(solution);
        }
        Ok(rows)
    }

    /// The seeds of lane group `group` of a point's ensemble: replica `k`
    /// always gets [`derive_seed`]`(point_seed, k)` — the grouping only
    /// decides *which* replicas an item runs, never how they are seeded.
    fn group_seeds(&self, point_seed: u64, group: usize) -> Vec<u64> {
        let repeats = self
            .repeats
            .expect("grouped solves only exist for ensembles");
        lane_group_range(repeats, self.lane_width, group)
            .map(|k| derive_seed(point_seed, k as u64))
            .collect()
    }

    /// One lane group of a stationary point: the raw per-replica observable
    /// currents, in replica order.
    fn stationary_group_rows(
        &self,
        backend: &StationaryBackend,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        point_seed: u64,
        group: usize,
    ) -> Result<Vec<Vec<f64>>, SimError> {
        let seeds = self.group_seeds(point_seed, group);
        if self.scalar_ensemble || seeds.len() == 1 {
            // A single replica (repeats=1, or a width-1 tail group) is
            // exactly one scalar walk — the batched machinery adds nothing.
            seeds
                .iter()
                .map(|&s| backend.stationary_currents(controls, observables, s))
                .collect()
        } else {
            backend.stationary_currents_ensemble(controls, observables, &seeds)
        }
    }

    /// One lane group of a transient ensemble: the raw observable rows of
    /// every replica trace, **replica-major** (`group_size × times.len()`
    /// rows, no time column — the combiner re-attaches it).
    fn transient_group_rows(
        &self,
        backend: &TransientBackend,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        point_seed: u64,
        group: usize,
    ) -> Result<Vec<Vec<f64>>, SimError> {
        let seeds = self.group_seeds(point_seed, group);
        let traces = if self.scalar_ensemble || seeds.len() == 1 {
            seeds
                .iter()
                .map(|&s| backend.transient_currents(drives, observables, times, s))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            backend.transient_currents_ensemble(drives, observables, times, &seeds)?
        };
        let mut rows = Vec::with_capacity(traces.len() * times.len());
        for trace in &traces {
            for i in 0..times.len() {
                rows.push(trace.row(i).to_vec());
            }
        }
        Ok(rows)
    }

    /// The recombination step matching this job's geometry: `None` for
    /// single-shot runs (items already are published rows).
    fn combiner(&self) -> Option<PointCombiner> {
        self.repeats?;
        Some(match &self.kind {
            PreparedKind::Sweep { values, .. } => PointCombiner::Stationary {
                prefixes: values.iter().map(|&v| vec![v]).collect(),
            },
            PreparedKind::Map {
                outer_values,
                inner_values,
                ..
            } => {
                let n_inner = inner_values.len();
                PointCombiner::Stationary {
                    prefixes: (0..self.points)
                        .map(|p| vec![outer_values[p / n_inner], inner_values[p % n_inner]])
                        .collect(),
                }
            }
            PreparedKind::Transient { times, .. } => PointCombiner::Transient {
                times: times.clone(),
            },
        })
    }

    pub(crate) fn assemble(&self, blocks: Vec<Vec<Vec<f64>>>) -> SimulationResult {
        let rows: Vec<Vec<f64>> = match self.combiner() {
            None => blocks.into_iter().flatten().collect(),
            Some(combiner) => blocks
                .chunks(self.groups_per_point)
                .enumerate()
                .flat_map(|(point, group_blocks)| {
                    let replica_rows: Vec<Vec<f64>> =
                        group_blocks.iter().flatten().cloned().collect();
                    combiner.combine(point, &replica_rows)
                })
                .collect(),
        };
        let result = SimulationResult::new(
            self.result_label.clone(),
            self.engine_name(),
            self.columns.clone(),
            rows,
            self.metadata.clone(),
        );
        match self
            .solver_stats
            .as_ref()
            .and_then(|stats| stats.lock().expect("solver stats mutex poisoned").effort())
        {
            Some(effort) => result.with_solver_effort(effort),
            None => result,
        }
    }
}

/// Prefix + currents, one published single-shot row.
fn single_row(prefix: &[f64], currents: Vec<f64>) -> Vec<f64> {
    let mut row = Vec::with_capacity(prefix.len() + currents.len());
    row.extend_from_slice(prefix);
    row.extend(currents);
    row
}

/// Recombines one point's raw replica rows (its lane-group items
/// concatenated in group order — which *is* plain replica order, see
/// [`se_exec::lane_group_range`]) into the published mean/stderr rows.
/// Summation always walks replicas `0..repeats` in order, so the published
/// tables are byte-identical across lane widths, worker counts and the
/// scalar fallback.
pub(crate) enum PointCombiner {
    /// One output row per point: the point's bias prefix + mean/stderr
    /// pairs over the replica rows.
    Stationary { prefixes: Vec<Vec<f64>> },
    /// `times.len()` output rows per point from replica-major raw rows:
    /// each output row is its time + mean/stderr pairs across replicas.
    Transient { times: Vec<f64> },
}

impl PointCombiner {
    fn combine(&self, point: usize, replica_rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        match self {
            PointCombiner::Stationary { prefixes } => {
                let rows: Vec<&[f64]> = replica_rows.iter().map(Vec::as_slice).collect();
                vec![ensemble_row(&prefixes[point], &rows)]
            }
            PointCombiner::Transient { times } => {
                // Replica r occupies rows [r*T, (r+1)*T); time i of every
                // replica sits at stride T.
                let t_count = times.len();
                (0..t_count)
                    .map(|i| {
                        let rows: Vec<&[f64]> = replica_rows
                            .iter()
                            .skip(i)
                            .step_by(t_count)
                            .map(Vec::as_slice)
                            .collect();
                        ensemble_row(&[times[i]], &rows)
                    })
                    .collect()
            }
        }
    }
}

/// Binds every planned run of a deck to its backend and grids.
pub(crate) fn prepare_deck(
    deck: &Deck,
    plan: &SimulationPlan,
    label: &str,
    options: &ExecOptions,
) -> Result<Vec<PreparedJob>, SimError> {
    // Only checkpointed runs consume the fingerprint; keep the deck
    // serialization + hash off the hot (un-checkpointed) pipeline.
    let fingerprint = if options.checkpoint.is_some() {
        se_exec::content_fingerprint(&deck.to_deck_string())
    } else {
        0
    };
    plan.runs
        .iter()
        .enumerate()
        .map(|(index, run)| prepare_run(deck, plan, run, index, label, fingerprint, options))
        .collect()
}

fn prepare_run(
    deck: &Deck,
    plan: &SimulationPlan,
    run: &PlannedRun,
    run_index: usize,
    label: &str,
    fingerprint: u64,
    options: &ExecOptions,
) -> Result<PreparedJob, SimError> {
    let ensemble = plan.repeats.is_some();
    let (kind, columns, items) = match &run.analysis {
        PlannedAnalysis::Sweep { control, values } => {
            let backend = build_stationary(&deck.netlist, &deck.options, run.engine)?;
            let control_id = backend.resolve_control(control)?;
            let observables = resolve_stationary_observables(&backend, &run.observables)?;
            let mut columns = vec![control.clone()];
            columns.extend(current_columns(&run.observables, ensemble));
            let items = values.len();
            (
                PreparedKind::Sweep {
                    backend,
                    control: control_id,
                    observables,
                    values: values.clone(),
                },
                columns,
                items,
            )
        }
        PlannedAnalysis::Map {
            outer_control,
            outer_values,
            inner_control,
            inner_values,
        } => {
            let backend = build_stationary(&deck.netlist, &deck.options, run.engine)?;
            let outer = backend.resolve_control(outer_control)?;
            let inner = backend.resolve_control(inner_control)?;
            let observables = resolve_stationary_observables(&backend, &run.observables)?;
            let mut columns = vec![outer_control.clone(), inner_control.clone()];
            columns.extend(current_columns(&run.observables, ensemble));
            let items = outer_values.len() * inner_values.len();
            (
                PreparedKind::Map {
                    backend,
                    outer,
                    inner,
                    observables,
                    outer_values: outer_values.clone(),
                    inner_values: inner_values.clone(),
                },
                columns,
                items,
            )
        }
        PlannedAnalysis::Transient { step, times } => {
            let backend = build_transient(&deck.netlist, &deck.options, run.engine, *step)?;
            let drives: Vec<(ControlId, Waveform)> = deck
                .waveforms
                .iter()
                .map(|(name, waveform)| Ok((backend.resolve_drive(name)?, waveform.clone())))
                .collect::<Result<_, SimError>>()?;
            let observables: Vec<ObservableId> = run
                .observables
                .iter()
                .map(|name| backend.resolve_observable(name))
                .collect::<Result<_, _>>()?;
            let mut columns = vec!["t".to_string()];
            columns.extend(current_columns(&run.observables, ensemble));
            (
                PreparedKind::Transient {
                    backend,
                    drives,
                    observables,
                    times: times.clone(),
                },
                columns,
                1, // the whole trace is one work item (time marches serially)
            )
        }
    };
    let lane_width = options.lane_width.unwrap_or(DEFAULT_LANE_WIDTH).max(1);
    // An ensemble fans every point out into lane groups; the substrate
    // geometry (and thus checkpoints and traces) is lane-width-bound.
    let groups_per_point = plan
        .repeats
        .map_or(1, |repeats| lane_group_count(repeats, lane_width).max(1));
    // Master-equation sweeps and maps without an ensemble run as
    // warm-started blocks: the *item* is a fixed-size block of points, so
    // the warm-chain layout is chunking- and scheduling-independent.
    // (The planner rejects `repeats=` for deterministic engines, so the
    // two fan-out schemes never meet.)
    let warm_block = plan.repeats.is_none()
        && matches!(
            &kind,
            PreparedKind::Sweep {
                backend: StationaryBackend::Master(_),
                ..
            } | PreparedKind::Map {
                backend: StationaryBackend::Master(_),
                ..
            }
        );
    let points_per_item = if warm_block { MASTER_WARM_BLOCK } else { 1 };
    let item_count = if warm_block {
        items.div_ceil(MASTER_WARM_BLOCK)
    } else {
        items * groups_per_point
    };
    let solver = match &kind {
        PreparedKind::Sweep {
            backend: StationaryBackend::Master(engine),
            ..
        }
        | PreparedKind::Map {
            backend: StationaryBackend::Master(engine),
            ..
        } => Some(engine.inner().solver().solver_name()),
        _ => None,
    };
    let mut spec = JobSpec::new(item_count).with_seed(plan.seed);
    if let Some(chunk) = options.chunk {
        spec = spec.with_chunk(chunk);
    }
    Ok(PreparedJob {
        metadata: metadata(plan, run, kind.engine_name(), solver),
        result_label: run.label.clone(),
        job_label: format!("{label}/{}", run.label),
        columns,
        repeats: plan.repeats,
        scalar_ensemble: options.scalar_ensemble,
        points: items,
        groups_per_point,
        points_per_item,
        lane_width,
        solver_stats: warm_block.then(|| Mutex::new(SolverAgg::default())),
        base_seed: plan.seed,
        spec,
        csv_path: options
            .csv
            .as_ref()
            .map(|base| export_path(base, run_index)),
        fingerprint,
        kind,
    })
}

/// A CSV export sink that creates (and truncates) its file only when the
/// first item is emitted — i.e. after every checkpoint of the batch has
/// been opened and validated and this job has actually produced data — so
/// a run that fails before emitting (a checkpoint geometry mismatch, a
/// sibling analysis failing to bind) never destroys a previous successful
/// export.
struct LazyCsvSink {
    path: String,
    columns: Vec<String>,
    inner: Option<CsvSink<BufWriter<File>>>,
}

impl LazyCsvSink {
    /// Opens the file and writes the header on first use.
    fn open(&mut self) -> std::io::Result<&mut CsvSink<BufWriter<File>>> {
        if self.inner.is_none() {
            let file = File::create(&self.path).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot create CSV export `{}`: {e}", self.path),
                )
            })?;
            let mut sink = CsvSink::new(BufWriter::new(file), self.columns.clone());
            se_exec::ResultSink::<Vec<Vec<f64>>>::start(&mut sink, &JobSpec::new(0))?;
            self.inner = Some(sink);
        }
        Ok(self.inner.as_mut().expect("just opened"))
    }
}

impl se_exec::ResultSink<Vec<Vec<f64>>> for LazyCsvSink {
    fn item(&mut self, index: usize, item: &Vec<Vec<f64>>) -> std::io::Result<()> {
        self.open()?.item(index, item)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        se_exec::ResultSink::<Vec<Vec<f64>>>::flush(&mut self.inner)
    }

    fn finish(&mut self, report: &se_exec::Report) -> std::io::Result<()> {
        // Zero-item jobs still deliver a header-only CSV.
        self.open()?;
        se_exec::ResultSink::<Vec<Vec<f64>>>::finish(&mut self.inner, report)
    }
}

/// Recombines grouped ensemble items into published rows on the way to the
/// CSV export. Items arrive in strict index order (the substrate's sink
/// contract), so a point's lane groups are consecutive: buffer the raw
/// replica rows, and on the point's last group emit one combined item
/// under the *point* index. Only the CSV stream recombines — progress
/// counts and replay traces stay at raw sharded-item granularity.
struct GroupedCsvSink {
    inner: LazyCsvSink,
    groups_per_point: usize,
    /// `None` for single-shot runs: items pass through untouched.
    combiner: Option<PointCombiner>,
    /// Raw replica rows of the point currently being assembled.
    buffer: Vec<Vec<f64>>,
}

impl se_exec::ResultSink<Vec<Vec<f64>>> for GroupedCsvSink {
    fn item(&mut self, index: usize, item: &Vec<Vec<f64>>) -> std::io::Result<()> {
        let Some(combiner) = &self.combiner else {
            return self.inner.item(index, item);
        };
        self.buffer.extend(item.iter().cloned());
        if (index + 1).is_multiple_of(self.groups_per_point) {
            let point = index / self.groups_per_point;
            let combined = combiner.combine(point, &self.buffer);
            self.buffer.clear();
            self.inner.item(point, &combined)
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        se_exec::ResultSink::<Vec<Vec<f64>>>::flush(&mut self.inner)
    }

    fn finish(&mut self, report: &se_exec::Report) -> std::io::Result<()> {
        se_exec::ResultSink::<Vec<Vec<f64>>>::finish(&mut self.inner, report)
    }
}

/// The per-job sink stack: optional streamed CSV (recombined to published
/// rows) plus optional progress (raw item counts).
type RunSink = Tee<Option<GroupedCsvSink>, Option<ProgressSink<Stderr>>>;

fn make_sink(prep: &PreparedJob, options: &ExecOptions) -> RunSink {
    let csv = prep.csv_path.as_ref().map(|path| GroupedCsvSink {
        inner: LazyCsvSink {
            path: path.clone(),
            columns: prep.columns.clone(),
            inner: None,
        },
        groups_per_point: prep.groups_per_point,
        combiner: prep.combiner(),
        buffer: Vec::new(),
    });
    let progress = options
        .progress
        .then(|| ProgressSink::stderr(prep.job_label.clone()));
    Tee(csv, progress)
}

/// Runs any number of prepared groups (one per deck) through **one**
/// shared worker pool and assembles per-group results. Group-level
/// failures (a compile error carried in, a sink that cannot be created, a
/// failing solve) stay contained to their group.
pub(crate) fn run_prepared(
    groups: Vec<Result<Vec<PreparedJob>, SimError>>,
    options: &ExecOptions,
) -> Vec<Result<Vec<SimulationResult>, SimError>> {
    let store = options.checkpoint.as_ref().map(CheckpointStore::new);
    let cancel = options.cancel.clone().unwrap_or_default();

    // Build every sink (lazy: no file is touched yet), then every job; a
    // failure poisons its whole group.
    let mut outcomes: Vec<Option<SimError>> = Vec::with_capacity(groups.len());
    let mut sinks: Vec<Vec<RunSink>> = Vec::with_capacity(groups.len());
    let prepared: Vec<Vec<PreparedJob>> = groups
        .into_iter()
        .map(|group| match group {
            Ok(preps) => {
                sinks.push(preps.iter().map(|prep| make_sink(prep, options)).collect());
                outcomes.push(None);
                preps
            }
            Err(e) => {
                outcomes.push(Some(e));
                sinks.push(Vec::new());
                Vec::new()
            }
        })
        .collect();

    // No two jobs may stream to the same export file: concurrent writers
    // would silently corrupt it. Poison every group involved in a clash
    // (adversarial deck names can collide across decks despite the batch
    // layer's unique naming).
    let mut csv_owners: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut clashing: Vec<usize> = Vec::new();
    for (group_index, preps) in prepared.iter().enumerate() {
        for prep in preps {
            if let Some(path) = &prep.csv_path {
                if let Some(&owner) = csv_owners.get(path.as_str()) {
                    clashing.push(owner);
                    clashing.push(group_index);
                } else {
                    csv_owners.insert(path, group_index);
                }
            }
        }
    }
    for group_index in clashing {
        if outcomes[group_index].is_none() {
            outcomes[group_index] = Some(SimError::Exec(
                "CSV export paths collide between analyses/decks — rename the decks or \
                 choose a different export base"
                    .into(),
            ));
        }
    }

    // Bind jobs: (group index, job) pairs over borrowed sinks and preps.
    // The first build failure poisons the group and stops binding its
    // remaining runs (their side effects — checkpoint wipes — are skipped).
    // Note: a *solver* failure deliberately does NOT stop the group's other
    // jobs mid-run — which error surfaces must never depend on thread
    // scheduling, so every claimed chunk computes (see
    // `se_exec::Job::run_pending`); the wasted work only occurs on the
    // failure path.
    let mut jobs = Vec::new();
    for ((group_index, preps), group_sinks) in prepared.iter().enumerate().zip(sinks.iter_mut()) {
        if outcomes[group_index].is_some() {
            continue;
        }
        for (prep, sink) in preps.iter().zip(group_sinks.iter_mut()) {
            let mut builder = JobBuilder::new(prep.spec)
                .label(prep.job_label.clone())
                .collect();
            if let Some(store) = &store {
                builder = builder
                    .checkpoint(store, &prep.job_label, options.resume)
                    .fingerprint(prep.fingerprint);
            }
            match builder.build(sink, |index, seed| prep.solve_item(index, seed)) {
                Ok(job) => jobs.push((group_index, job)),
                Err(e) => {
                    outcomes[group_index] = Some(SimError::from(e));
                    break;
                }
            }
        }
    }
    // Drop jobs of groups poisoned mid-bind (an earlier sibling built but
    // the group can never complete): running them would waste work, and
    // their lazy sinks never having started means no export was touched.
    jobs.retain(|(group_index, _)| outcomes[*group_index].is_none());

    let tasks: Vec<&dyn ChunkTask> = jobs.iter().map(|(_, job)| job as &dyn ChunkTask).collect();
    run_batch(&tasks, options.workers, &cancel);
    drop(tasks);

    // Finish jobs in order, assembling per-group tables.
    let mut results: Vec<Vec<SimulationResult>> = prepared.iter().map(|_| Vec::new()).collect();
    let mut job_cursor: Vec<usize> = vec![0; prepared.len()];
    for (group_index, job) in jobs {
        let prep_index = job_cursor[group_index];
        job_cursor[group_index] += 1;
        match job.finish() {
            Ok((blocks, _report)) => {
                results[group_index].push(prepared[group_index][prep_index].assemble(blocks));
            }
            Err(e) => {
                if outcomes[group_index].is_none() {
                    outcomes[group_index] = Some(SimError::from(e));
                }
            }
        }
    }

    outcomes
        .into_iter()
        .zip(results)
        .map(|(failure, tables)| match failure {
            Some(e) => Err(e),
            None => Ok(tables),
        })
        .collect()
}

fn resolve_stationary_observables(
    backend: &StationaryBackend,
    names: &[String],
) -> Result<Vec<ObservableId>, SimError> {
    names
        .iter()
        .map(|name| backend.resolve_observable(name))
        .collect()
}

/// Column names of the observable currents: `I(J1)`, `I(VD)`, … For an
/// ensemble run every observable becomes a mean/stderr pair:
/// `I(J1)`, `stderr(I(J1))`, …
fn current_columns(observables: &[String], ensemble: bool) -> Vec<String> {
    observables
        .iter()
        .flat_map(|name| {
            let mut pair = vec![format!("I({name})")];
            if ensemble {
                pair.push(format!("stderr(I({name}))"));
            }
            pair
        })
        .collect()
}

/// Builds one ensemble output row: the bias/time prefix followed by the
/// mean and standard error of each observable over the replica rows.
fn ensemble_row(prefix: &[f64], rows: &[&[f64]]) -> Vec<f64> {
    let width = rows.first().map_or(0, |row| row.len());
    let mut out = Vec::with_capacity(prefix.len() + 2 * width);
    out.extend_from_slice(prefix);
    for k in 0..width {
        let (mean, stderr) = mean_stderr(rows.iter().map(|row| row[k]));
        out.push(mean);
        out.push(stderr);
    }
    out
}

/// Sample mean and standard error of the mean (zero for one sample, where
/// the sample variance is undefined).
fn mean_stderr(samples: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = samples.clone().count();
    let mean = samples.clone().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let variance = samples.map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, (variance / n as f64).sqrt())
}

/// Splices a `-suffix` into an export path's file name, before the
/// extension: `runs.v1/out.csv` + `2` → `runs.v1/out-2.csv`. Only the
/// file name is rewritten — dots in directory components are left alone.
/// The one splicing rule behind [`export_path`] and
/// [`crate::batch::deck_export_base`].
pub(crate) fn splice_export_suffix(base: &str, suffix: &str) -> String {
    let (dir, file) = match base.rsplit_once('/') {
        Some((dir, file)) => (Some(dir), file),
        None => (None, base),
    };
    let renamed = match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{suffix}.{ext}"),
        _ => format!("{file}-{suffix}"),
    };
    match dir {
        Some(dir) => format!("{dir}/{renamed}"),
        None => renamed,
    }
}

/// Splices an analysis index into an export path: `out.csv` → `out-2.csv`
/// for the second analysis (the first keeps the bare name).
#[must_use]
pub fn export_path(base: &str, index: usize) -> String {
    if index == 0 {
        return base.to_string();
    }
    splice_export_suffix(base, &(index + 1).to_string())
}

#[cfg(test)]
mod tests {
    use super::{ensemble_row, export_path, mean_stderr, PointCombiner};

    #[test]
    fn mean_stderr_matches_hand_computation() {
        let (mean, stderr) = mean_stderr([1.0, 2.0, 3.0, 4.0].into_iter());
        assert!((mean - 2.5).abs() < 1e-15);
        // Sample variance 5/3; stderr = sqrt(5/3/4).
        assert!((stderr - (5.0 / 12.0_f64).sqrt()).abs() < 1e-15, "{stderr}");
        // One sample: the variance is undefined, the stderr reports 0.
        assert_eq!(mean_stderr(std::iter::once(7.5)), (7.5, 0.0));
    }

    #[test]
    fn ensemble_rows_interleave_mean_and_stderr_pairs() {
        let rows: Vec<&[f64]> = vec![&[1.0, 10.0], &[3.0, 10.0]];
        let row = ensemble_row(&[0.5], &rows);
        assert_eq!(row.len(), 5);
        assert_eq!(row[0], 0.5);
        assert_eq!(row[1], 2.0); // mean of observable 0
        assert!(row[2] > 0.0); // its stderr
        assert_eq!(row[3], 10.0); // mean of observable 1
        assert_eq!(row[4], 0.0); // identical replicas → zero stderr
    }

    #[test]
    fn lane_group_seeds_are_width_independent() {
        // Replica k of a point always gets derive_seed(point_seed, k):
        // the concatenated group seed lists must match the plain replica
        // list for every width.
        let point_seed = 42u64;
        let repeats = 7usize;
        let flat: Vec<u64> = (0..repeats as u64)
            .map(|k| se_engine::derive_seed(point_seed, k))
            .collect();
        for width in [1usize, 2, 3, 7, 8, 16] {
            let grouped: Vec<u64> = (0..se_exec::lane_group_count(repeats, width))
                .flat_map(|group| {
                    se_exec::lane_group_range(repeats, width, group)
                        .map(|k| se_engine::derive_seed(point_seed, k as u64))
                })
                .collect();
            assert_eq!(grouped, flat, "width={width}");
        }
        // Distinct replicas must draw distinct randomness.
        assert!(flat.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn transient_combiner_reassembles_replica_major_rows() {
        // Two replicas × three times, one observable; replica-major raw
        // rows as transient_group_rows emits them.
        let combiner = PointCombiner::Transient {
            times: vec![0.0, 1.0, 2.0],
        };
        let raw: Vec<Vec<f64>> = vec![
            vec![10.0], // replica 0, t0
            vec![20.0], // replica 0, t1
            vec![30.0], // replica 0, t2
            vec![14.0], // replica 1, t0
            vec![20.0], // replica 1, t1
            vec![26.0], // replica 1, t2
        ];
        let rows = combiner.combine(0, &raw);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], 0.0); // time prefix restored
        assert_eq!(rows[0][1], 12.0); // mean over replicas at t0
        assert_eq!(rows[1][1], 20.0);
        assert_eq!(rows[1][2], 0.0); // identical replicas → zero stderr
        assert_eq!(rows[2][1], 28.0);
    }

    #[test]
    fn export_paths_suffix_only_the_file_name() {
        assert_eq!(export_path("out.csv", 0), "out.csv");
        assert_eq!(export_path("out.csv", 1), "out-2.csv");
        assert_eq!(export_path("out", 2), "out-3");
        // A dot in a directory component must not be split.
        assert_eq!(export_path("runs.v1/out", 1), "runs.v1/out-2");
        assert_eq!(export_path("runs.v1/out.csv", 1), "runs.v1/out-2.csv");
        // Hidden files keep their leading dot.
        assert_eq!(export_path(".hidden", 1), ".hidden-2");
    }
}
