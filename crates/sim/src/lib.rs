//! The deck-driven simulation pipeline: SPICE-style deck text in, result
//! tables out, no host-language programming required.
//!
//! The simulator line the paper belongs to (SIMON and the SET-aware SPICE
//! extensions) is defined by its front end: a user hands the tool a circuit
//! description *plus analysis commands* and gets currents back. This crate
//! closes that loop for the toolkit:
//!
//! ```text
//! deck text ──parse──▶ Deck ──compile──▶ SimulationPlan ──execute──▶ [SimulationResult]
//!            se-netlist       se-sim           se-sim
//! ```
//!
//! * [`compile`] lowers a parsed [`Deck`] onto the engine
//!   layer: the netlist partition ([`se_netlist::partition_report`]) picks
//!   the backend — pure tunnel-junction decks run on the master equation
//!   (DC) or the kinetic Monte-Carlo clock (transient), pure conventional
//!   decks on SPICE, mixed decks on the hybrid co-simulator — unless the
//!   deck's `.options ENGINE=` overrides it, in which case the choice is
//!   checked against the partition and rejections name the nodes and
//!   elements responsible.
//! * [`execute`] runs every analysis of the plan concurrently through the
//!   [`se_exec`] job substrate — chunked across all cores, serial ≡
//!   parallel ≡ chunked ≡ resumed, all bit-identical — and returns one
//!   [`SimulationResult`] table per analysis, with engine provenance in
//!   the metadata. [`execute_with_options`] adds streamed CSV export,
//!   progress reporting, cancellation and checkpoint/resume;
//!   [`run_deck_batch`] runs many decks through **one** shared worker
//!   pool.
//! * [`run_deck`] is the one-call convenience: parse, compile, execute.
//! * [`record_deck`] / [`verify_trace_dir`] close the determinism loop:
//!   record a deck run's every output bit into a self-contained trace
//!   directory, then re-execute it — under any worker count, any time
//!   later — and either confirm bit-identity or localize the first
//!   divergence to analysis, chunk, item, row and column.
//!
//! # Example
//!
//! ```
//! use se_sim::run_deck;
//!
//! # fn main() -> Result<(), se_sim::SimError> {
//! let deck = "\
//! single SET, gate sweep over one Coulomb period
//! VD drain 0 1m
//! VG gate 0 0
//! J1 drain island C=0.5a R=100k
//! J2 island 0 C=0.5a R=100k
//! CG gate island 1a
//! .options temp=1 seed=7
//! .dc VG 0 0.16 8m
//! .print dc i(J1)
//! .end
//! ";
//! let run = run_deck(deck)?;
//! // The partition found a pure single-electron deck, so the master
//! // equation ran the sweep.
//! assert_eq!(run.results[0].engine(), "master-equation");
//! let current = run.results[0].column("I(J1)").unwrap();
//! assert_eq!(current.len(), 21);
//! // Coulomb oscillation: the conductance peak sits mid-period.
//! assert!(current[10] > 10.0 * current[0].abs().max(1e-15));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this workspace uses to reject NaN alongside
// ordinary range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod backend;
pub mod batch;
pub mod error;
pub mod exec;
pub mod plan;
pub mod result;
pub mod trace;

pub use backend::{
    analytic_from_netlist, build_stationary, build_transient, AnalyticDeckEngine, SourceMapped,
    StationaryBackend, TransientBackend,
};
pub use batch::{deck_export_base, run_deck_batch, BatchOutcome};
pub use error::SimError;
pub use exec::{
    execute, execute_serial, execute_with_options, export_path, ExecOptions, MASTER_WARM_BLOCK,
};
pub use plan::{compile, EngineChoice, PlannedAnalysis, PlannedRun, SimulationPlan};
pub use result::{SimulationResult, SolverEffort};
pub use trace::{record_deck, verify_trace_dir, AnalysisVerdict, RecordSummary, VerifyReport};

use se_netlist::{parse_full_deck, Deck};

/// A completed deck run: the parsed deck (with its diagnostics), the
/// compiled plan and the executed results.
#[derive(Debug, Clone)]
pub struct DeckRun {
    /// The parsed deck, including parser diagnostics.
    pub deck: Deck,
    /// The compiled plan.
    pub plan: SimulationPlan,
    /// One result table per analysis, in deck order.
    pub results: Vec<SimulationResult>,
}

/// Parses, compiles and executes a deck in one call.
///
/// # Errors
///
/// Propagates parse errors ([`SimError::Netlist`]), compilation errors
/// ([`SimError::Plan`] and friends) and engine solve errors.
pub fn run_deck(text: &str) -> Result<DeckRun, SimError> {
    let deck = parse_full_deck(text)?;
    let plan = compile(&deck)?;
    let results = execute(&deck, &plan)?;
    Ok(DeckRun {
        deck,
        plan,
        results,
    })
}

/// Commonly used types for driving the deck pipeline.
pub mod prelude {
    pub use crate::backend::{StationaryBackend, TransientBackend};
    pub use crate::batch::{run_deck_batch, BatchOutcome};
    pub use crate::error::SimError;
    pub use crate::exec::{execute, execute_serial, execute_with_options, ExecOptions};
    pub use crate::plan::{compile, EngineChoice, PlannedAnalysis, PlannedRun, SimulationPlan};
    pub use crate::result::SimulationResult;
    pub use crate::{run_deck, DeckRun};
    pub use se_netlist::{parse_full_deck, Deck};
}

#[cfg(test)]
mod tests {
    use super::*;

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.options temp=1 seed=3\n.dc VG 0 0.16 16m\n.print dc i(J1)\n";

    #[test]
    fn run_deck_goes_end_to_end() {
        let run = run_deck(SET_DECK).unwrap();
        assert!(run.deck.diagnostics.is_empty());
        assert_eq!(run.plan.runs.len(), 1);
        assert_eq!(run.results.len(), 1);
        let result = &run.results[0];
        assert_eq!(result.engine(), "master-equation");
        assert_eq!(result.columns(), &["VG".to_string(), "I(J1)".into()]);
        assert_eq!(result.len(), 11);
    }

    #[test]
    fn parallel_and_serial_execution_are_bit_identical() {
        let deck = parse_full_deck(SET_DECK).unwrap();
        let plan = compile(&deck).unwrap();
        let parallel = execute(&deck, &plan).unwrap();
        let serial = execute_serial(&deck, &plan).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn forcing_kmc_changes_the_engine_but_keeps_the_shape() {
        let text = SET_DECK.replace(
            ".options temp=1 seed=3",
            ".options temp=1 seed=3 engine=kmc events=4000",
        );
        let run = run_deck(&text).unwrap();
        assert_eq!(run.results[0].engine(), "kinetic-monte-carlo");
        assert_eq!(run.results[0].len(), 11);
    }

    #[test]
    fn repeats_produce_mean_and_stderr_columns() {
        let text = SET_DECK.replace(
            ".options temp=1 seed=3",
            ".options temp=1 seed=3 engine=kmc events=2000 repeats=4",
        );
        let run = run_deck(&text).unwrap();
        let result = &run.results[0];
        assert_eq!(
            result.columns(),
            &["VG".to_string(), "I(J1)".into(), "stderr(I(J1))".into()]
        );
        assert_eq!(result.len(), 11);
        assert!(result
            .metadata()
            .iter()
            .any(|(k, v)| k == "repeats" && v == "4"));
        // A stochastic ensemble at the conductance peak spreads: at least
        // one bias point must report a positive standard error.
        let stderr = result.column("stderr(I(J1))").unwrap();
        assert!(stderr.iter().any(|&s| s > 0.0), "{stderr:?}");
    }

    #[test]
    fn batched_ensembles_match_the_scalar_fallback_bit_for_bit() {
        let text = SET_DECK.replace(
            ".options temp=1 seed=3",
            ".options temp=1 seed=3 engine=kmc events=1500 repeats=3",
        );
        let deck = parse_full_deck(&text).unwrap();
        let plan = compile(&deck).unwrap();
        let batched = execute(&deck, &plan).unwrap();
        let scalar = execute_with_options(
            &deck,
            &plan,
            &ExecOptions {
                scalar_ensemble: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn transient_repeats_go_through_the_batched_clock() {
        let deck_text = "pulsed SET\n\
             VD drain 0 1m\n\
             VG gate 0 PULSE(0 0.08 20n 40n 80n)\n\
             J1 drain island C=0.5a R=100k\n\
             J2 island 0 C=0.5a R=100k\n\
             CG gate island 1a\n\
             .options temp=1 seed=5 engine=kmc repeats=3\n\
             .tran 10n 80n\n\
             .print tran i(J1)\n";
        let deck = parse_full_deck(deck_text).unwrap();
        let plan = compile(&deck).unwrap();
        let batched = execute(&deck, &plan).unwrap();
        assert_eq!(
            batched[0].columns(),
            &["t".to_string(), "I(J1)".into(), "stderr(I(J1))".into()]
        );
        let scalar = execute_with_options(
            &deck,
            &plan,
            &ExecOptions {
                scalar_ensemble: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(batched, scalar);
    }
}
