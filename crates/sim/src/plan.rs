//! The deck compiler: validated [`Deck`] in, executable [`SimulationPlan`]
//! out.
//!
//! Compilation is pure planning — no engine is built and no point is
//! solved. The compiler:
//!
//! 1. validates the netlist structurally;
//! 2. partitions it ([`se_netlist::partition_report`]) and picks an engine
//!    per analysis — the deck's `.options ENGINE=` preference if present
//!    (checked for compatibility, with the partition's named nodes and
//!    elements in every rejection), otherwise automatically: pure
//!    tunnel-junction decks take the master equation for DC work and the
//!    kinetic Monte-Carlo clock for transients, pure conventional decks
//!    take SPICE, and mixed decks take the hybrid co-simulator;
//! 3. materialises each `.dc` grid and `.tran` sample schedule;
//! 4. resolves `.print` probes (or fills in the engine family's default
//!    observables) against the netlist.
//!
//! The resulting plan is plain data (`PartialEq`), which is what makes
//! "same deck → same plan" testable: the integration suite round-trips
//! programmatically built decks through [`Deck::to_deck_string`] and
//! re-compiles them to identical plans.

use crate::error::SimError;
use se_engine::{linspace, sample_times};
use se_netlist::{partition_report, Analysis, Deck, EnginePreference, PartitionReport, SweepSpec};

/// The engine family a planned run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The closed-form analytic SET model.
    Analytic,
    /// The deterministic master-equation solver.
    Master,
    /// The kinetic Monte-Carlo event sampler.
    Kmc,
    /// The SPICE Newton / backward-Euler engine.
    Spice,
    /// The SPICE ↔ single-electron co-simulator.
    Hybrid,
}

impl EngineChoice {
    /// The short name used in reports and provenance metadata.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EngineChoice::Analytic => "analytic",
            EngineChoice::Master => "master",
            EngineChoice::Kmc => "kmc",
            EngineChoice::Spice => "spice",
            EngineChoice::Hybrid => "hybrid",
        }
    }

    /// Whether the engine measures junction currents (`true`) or
    /// voltage-source branch currents (`false`).
    #[must_use]
    pub fn measures_junctions(&self) -> bool {
        !matches!(self, EngineChoice::Spice)
    }
}

/// One lowered analysis: the concrete grid a run visits.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedAnalysis {
    /// A 1-D sweep of one source.
    Sweep {
        /// The swept source name.
        control: String,
        /// The bias grid, volt.
        values: Vec<f64>,
    },
    /// A 2-D stability map.
    Map {
        /// Slow-axis source name.
        outer_control: String,
        /// Slow-axis grid, volt.
        outer_values: Vec<f64>,
        /// Fast-axis source name.
        inner_control: String,
        /// Fast-axis grid, volt.
        inner_values: Vec<f64>,
    },
    /// A transient run.
    Transient {
        /// Integration ceiling (the `.tran` step), seconds.
        step: f64,
        /// The sample schedule, seconds.
        times: Vec<f64>,
    },
}

/// One executable run of a plan: an analysis bound to an engine and a set
/// of observables.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRun {
    /// Human-readable label (the directive it came from).
    pub label: String,
    /// The engine family that executes this run.
    pub engine: EngineChoice,
    /// Why that engine was chosen (preference or partition narrative).
    pub rationale: String,
    /// The lowered analysis.
    pub analysis: PlannedAnalysis,
    /// Observable names, in output-column order.
    pub observables: Vec<String>,
}

/// A compiled deck: everything the executor needs except the netlist
/// itself (which stays on the [`Deck`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationPlan {
    /// The deck title.
    pub title: String,
    /// Temperature of the single-electron domain, kelvin.
    pub temperature: f64,
    /// Master seed of the deterministic seeding discipline.
    pub seed: u64,
    /// Seed-ensemble size (`.options repeats=`): every bias point / trace
    /// is solved this many times and the tables report mean and
    /// standard-error columns. `None` = single-shot tables.
    pub repeats: Option<usize>,
    /// The runs, in deck order.
    pub runs: Vec<PlannedRun>,
}

/// Whether an analysis is stationary (`.dc`) or time-domain (`.tran`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnalysisKind {
    Stationary,
    Transient,
}

/// Compiles a parsed deck into an executable [`SimulationPlan`].
///
/// # Errors
///
/// Returns [`SimError::Netlist`] for structural netlist problems and
/// [`SimError::Plan`] for planning failures: no analyses, an engine
/// preference the partition cannot honour (the message names the nodes and
/// elements responsible), unknown swept sources, or probes the chosen
/// engine cannot measure.
pub fn compile(deck: &Deck) -> Result<SimulationPlan, SimError> {
    deck.netlist.validate()?;
    if deck.analyses.is_empty() {
        return Err(SimError::Plan(
            "the deck has no analyses — add a `.dc` or `.tran` card".into(),
        ));
    }
    let report = partition_report(&deck.netlist);

    let mut runs = Vec::with_capacity(deck.analyses.len());
    for analysis in &deck.analyses {
        let kind = match analysis {
            Analysis::Transient { .. } => AnalysisKind::Transient,
            _ => AnalysisKind::Stationary,
        };
        let (engine, rationale) = choose_engine(&report, deck.options.engine, kind)?;
        let observables = resolve_observables(deck, engine)?;
        let planned = match analysis {
            Analysis::DcSweep { sweep } => PlannedAnalysis::Sweep {
                control: checked_source(deck, engine, sweep)?,
                values: grid_of(sweep)?,
            },
            Analysis::DcMap { outer, inner } => PlannedAnalysis::Map {
                outer_control: checked_source(deck, engine, outer)?,
                outer_values: grid_of(outer)?,
                inner_control: checked_source(deck, engine, inner)?,
                inner_values: grid_of(inner)?,
            },
            Analysis::Transient { step, stop } => {
                for (source, _) in &deck.waveforms {
                    checked_drive(deck, engine, source)?;
                }
                PlannedAnalysis::Transient {
                    step: *step,
                    times: sample_times(*step, *stop)?,
                }
            }
        };
        if deck.options.repeats.is_some() && engine != EngineChoice::Kmc {
            return Err(SimError::Plan(format!(
                ".options repeats= runs a seed ensemble through the kinetic Monte-Carlo \
                 engine, but `{analysis}` would run on engine {} ({rationale}); add \
                 `.options engine=kmc` or drop repeats=",
                engine.name()
            )));
        }
        runs.push(PlannedRun {
            label: analysis.to_string(),
            engine,
            rationale,
            analysis: planned,
            observables,
        });
    }
    Ok(SimulationPlan {
        title: deck.netlist.title().to_string(),
        temperature: deck.options.temperature,
        seed: deck.options.seed,
        repeats: deck.options.repeats,
        runs,
    })
}

/// Materialises the bias grid of one sweep spec.
fn grid_of(sweep: &SweepSpec) -> Result<Vec<f64>, SimError> {
    if sweep.points == 1 {
        Ok(vec![sweep.start])
    } else {
        Ok(linspace(sweep.start, sweep.stop, sweep.points)?)
    }
}

/// Validates that a swept source exists, is a voltage source, and — for
/// the engines that lower onto a `TunnelSystem` — pins its electrode with
/// the positive terminal.
fn checked_source(
    deck: &Deck,
    engine: EngineChoice,
    sweep: &SweepSpec,
) -> Result<String, SimError> {
    let name = &sweep.source;
    let Some(element) = deck.netlist.element(name) else {
        let available: Vec<&str> = deck
            .netlist
            .voltage_sources()
            .map(se_netlist::Element::name)
            .collect();
        return Err(SimError::Plan(format!(
            ".dc sweeps source `{name}`, but the deck has no such element (voltage sources: {})",
            available.join(", ")
        )));
    };
    if !element.is_voltage_source() {
        return Err(SimError::Plan(format!(
            ".dc sweeps `{name}`, which is not a voltage source"
        )));
    }
    positive_terminal_check(deck, engine, name, "swept")?;
    Ok(name.clone())
}

/// Validates a `.tran` drive (a source carrying a waveform) the same way a
/// swept source is validated: on the engines that lower onto a
/// `TunnelSystem`, the wrapper translates the source to the electrode it
/// pins and applies the waveform value directly, so the positive terminal
/// must sit on the electrode or the drive polarity would silently flip.
fn checked_drive(deck: &Deck, engine: EngineChoice, source: &str) -> Result<(), SimError> {
    positive_terminal_check(deck, engine, source, "driven")
}

/// The shared positive-terminal rule of the island backends.
fn positive_terminal_check(
    deck: &Deck,
    engine: EngineChoice,
    name: &str,
    action: &str,
) -> Result<(), SimError> {
    if !matches!(
        engine,
        EngineChoice::Analytic | EngineChoice::Master | EngineChoice::Kmc
    ) {
        return Ok(());
    }
    let Some(element) = deck.netlist.element(name) else {
        return Ok(());
    };
    if element.is_voltage_source() && !element.nodes()[1].is_ground() {
        return Err(SimError::Plan(format!(
            "source `{name}` must be ground-referenced with its positive terminal on the \
             electrode to be {action} on the {} backend (write `{name} <node> 0 <value>`)",
            engine.name()
        )));
    }
    Ok(())
}

/// Resolves the `.print` probes (or the engine family's defaults) against
/// the netlist.
fn resolve_observables(deck: &Deck, engine: EngineChoice) -> Result<Vec<String>, SimError> {
    let junctions: Vec<String> = deck
        .netlist
        .tunnel_junctions()
        .map(|e| e.name().to_string())
        .collect();
    let sources: Vec<String> = deck
        .netlist
        .voltage_sources()
        .map(|e| e.name().to_string())
        .collect();
    if deck.probes.is_empty() {
        let defaults = if engine.measures_junctions() {
            junctions
        } else {
            sources
        };
        if defaults.is_empty() {
            return Err(SimError::Plan(format!(
                "no default observables: the {} backend measures {}, and the deck has none",
                engine.name(),
                if engine.measures_junctions() {
                    "tunnel-junction currents"
                } else {
                    "voltage-source branch currents"
                }
            )));
        }
        return Ok(defaults);
    }
    let canonical = |pool: &[String], probe: &String| -> Option<String> {
        pool.iter()
            .find(|name| name.eq_ignore_ascii_case(probe))
            .cloned()
    };
    deck.probes
        .iter()
        .map(|probe| {
            let (pool, kind) = if engine.measures_junctions() {
                (&junctions, "tunnel junction")
            } else {
                (&sources, "voltage source")
            };
            canonical(pool, probe).ok_or_else(|| {
                SimError::Plan(format!(
                    "probe `i({probe})` does not name a {kind} (the {} backend measures {kind} \
                     currents; available: {})",
                    engine.name(),
                    pool.join(", ")
                ))
            })
        })
        .collect()
}

/// Picks the engine for one analysis from the deck preference and the
/// partition, or explains why the preference cannot be honoured.
fn choose_engine(
    report: &PartitionReport,
    preference: EnginePreference,
    kind: AnalysisKind,
) -> Result<(EngineChoice, String), SimError> {
    let islands = report.split.islands.len();
    let reasons = report.hybrid_reasons();
    match preference {
        EnginePreference::Auto => {
            if report.is_pure_single_electron() {
                let choice = match kind {
                    AnalysisKind::Stationary => EngineChoice::Master,
                    AnalysisKind::Transient => EngineChoice::Kmc,
                };
                Ok((
                    choice,
                    format!(
                        "auto: pure single-electron deck ({islands} island group{}, nodes [{}])",
                        if islands == 1 { "" } else { "s" },
                        report.island_nodes.join(", ")
                    ),
                ))
            } else if report.is_pure_conventional() {
                Ok((
                    EngineChoice::Spice,
                    "auto: no single-electron islands — conventional SPICE deck".into(),
                ))
            } else {
                Ok((
                    EngineChoice::Hybrid,
                    format!("auto: mixed deck — {}", reasons.join("; ")),
                ))
            }
        }
        EnginePreference::Analytic => {
            require_pure_single_electron(report, "analytic")?;
            Ok((EngineChoice::Analytic, "requested: engine=analytic".into()))
        }
        EnginePreference::Master => {
            require_pure_single_electron(report, "master")?;
            Ok((EngineChoice::Master, "requested: engine=master".into()))
        }
        EnginePreference::Kmc => {
            require_pure_single_electron(report, "kmc")?;
            Ok((EngineChoice::Kmc, "requested: engine=kmc".into()))
        }
        EnginePreference::Spice => {
            if report.has_islands() {
                return Err(SimError::Plan(format!(
                    "engine=spice cannot simulate single-electron islands (island nodes [{}] \
                     with junctions {}); use master, kmc or hybrid",
                    report.island_nodes.join(", "),
                    report
                        .split
                        .islands
                        .iter()
                        .flat_map(|i| i.junctions.iter().cloned())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            Ok((EngineChoice::Spice, "requested: engine=spice".into()))
        }
        EnginePreference::Hybrid => {
            if !report.has_islands() {
                return Err(SimError::Plan(
                    "engine=hybrid needs at least one single-electron island; this deck is \
                     purely conventional — use engine=spice"
                        .into(),
                ));
            }
            Ok((EngineChoice::Hybrid, "requested: engine=hybrid".into()))
        }
    }
}

/// Rejects engine preferences that need a pure single-electron deck,
/// naming the offending nodes and elements.
fn require_pure_single_electron(report: &PartitionReport, engine: &str) -> Result<(), SimError> {
    if report.is_pure_single_electron() {
        return Ok(());
    }
    if !report.has_islands() {
        return Err(SimError::Plan(format!(
            "engine={engine} needs single-electron islands, but the partition found none — use \
             engine=spice for a conventional deck"
        )));
    }
    Err(SimError::Plan(format!(
        "engine={engine} needs a pure single-electron deck, but the partition is mixed: {}",
        report.hybrid_reasons().join("; ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_full_deck;

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n";

    fn with_cards(cards: &str) -> Deck {
        parse_full_deck(&format!("{SET_DECK}{cards}")).unwrap()
    }

    #[test]
    fn pure_se_decks_default_to_master_for_dc_and_kmc_for_tran() {
        let plan = compile(&with_cards(".dc VG 0 0.16 4m\n.tran 10n 100n\n")).unwrap();
        assert_eq!(plan.runs.len(), 2);
        assert_eq!(plan.runs[0].engine, EngineChoice::Master);
        assert!(
            plan.runs[0].rationale.contains("island"),
            "{}",
            plan.runs[0].rationale
        );
        assert_eq!(plan.runs[1].engine, EngineChoice::Kmc);
        match &plan.runs[0].analysis {
            PlannedAnalysis::Sweep { control, values } => {
                assert_eq!(control, "VG");
                assert_eq!(values.len(), 41);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
        match &plan.runs[1].analysis {
            PlannedAnalysis::Transient { times, step } => {
                assert_eq!(times.len(), 11);
                assert_eq!(*step, 10e-9);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
        // Default observables: all junctions.
        assert_eq!(
            plan.runs[0].observables,
            vec!["J1".to_string(), "J2".into()]
        );
    }

    #[test]
    fn conventional_decks_take_the_spice_engine() {
        let deck =
            parse_full_deck("divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n.dc V1 0 2 0.5\n")
                .unwrap();
        let plan = compile(&deck).unwrap();
        assert_eq!(plan.runs[0].engine, EngineChoice::Spice);
        // Default observables: all source branch currents.
        assert_eq!(plan.runs[0].observables, vec!["V1".to_string()]);
    }

    #[test]
    fn mixed_decks_take_the_hybrid_engine_and_name_the_bridge() {
        let deck = parse_full_deck(
            "mixed\nVDD vdd 0 5m\nVG gate 0 0\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.dc VG 0 0.16 8m\n",
        )
        .unwrap();
        let plan = compile(&deck).unwrap();
        assert_eq!(plan.runs[0].engine, EngineChoice::Hybrid);
        assert!(
            plan.runs[0].rationale.contains("`drain`"),
            "{}",
            plan.runs[0].rationale
        );
        assert!(
            plan.runs[0].rationale.contains("`RL`"),
            "{}",
            plan.runs[0].rationale
        );
    }

    #[test]
    fn engine_preferences_are_checked_against_the_partition() {
        let err = compile(&with_cards(".options engine=spice\n.dc VG 0 0.16 4m\n")).unwrap_err();
        assert!(err.to_string().contains("island"), "{err}");
        assert!(err.to_string().contains("J1"), "{err}");

        let conventional = parse_full_deck(
            "divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n.options engine=master\n.dc V1 0 2 0.5\n",
        )
        .unwrap();
        let err = compile(&conventional).unwrap_err();
        assert!(err.to_string().contains("no"), "{err}");

        let mixed = parse_full_deck(
            "mixed\nVDD vdd 0 5m\nVG gate 0 0\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.options engine=kmc\n.dc VG 0 0.16 8m\n",
        )
        .unwrap();
        let err = compile(&mixed).unwrap_err();
        assert!(err.to_string().contains("`RL`"), "{err}");
    }

    #[test]
    fn probes_resolve_case_insensitively_and_reject_wrong_kinds() {
        let plan = compile(&with_cards(".dc VG 0 0.16 4m\n.print i(j1)\n")).unwrap();
        assert_eq!(plan.runs[0].observables, vec!["J1".to_string()]);

        let err = compile(&with_cards(".dc VG 0 0.16 4m\n.print i(CG)\n")).unwrap_err();
        assert!(err.to_string().contains("CG"), "{err}");
        assert!(err.to_string().contains("available"), "{err}");
    }

    #[test]
    fn unknown_swept_sources_are_rejected_with_candidates() {
        let err = compile(&with_cards(".dc VX 0 0.16 4m\n")).unwrap_err();
        assert!(err.to_string().contains("VX"), "{err}");
        assert!(err.to_string().contains("VD"), "{err}");
    }

    #[test]
    fn decks_without_analyses_are_rejected() {
        let err = compile(&with_cards("")).unwrap_err();
        assert!(err.to_string().contains("no analyses"), "{err}");
    }

    #[test]
    fn repeats_require_the_kmc_engine() {
        // Auto picks the master equation for `.dc` on a pure SE deck, which
        // cannot run a seed ensemble.
        let err = compile(&with_cards(".options repeats=8\n.dc VG 0 0.16 4m\n")).unwrap_err();
        assert!(err.to_string().contains("repeats"), "{err}");
        assert!(err.to_string().contains("engine=kmc"), "{err}");

        let plan = compile(&with_cards(
            ".options engine=kmc repeats=8\n.dc VG 0 0.16 4m\n.tran 10n 100n\n",
        ))
        .unwrap();
        assert_eq!(plan.repeats, Some(8));
        assert!(plan.runs.iter().all(|r| r.engine == EngineChoice::Kmc));

        // No repeats: the plan stays single-shot.
        assert_eq!(
            compile(&with_cards(".dc VG 0 0.16 4m\n")).unwrap().repeats,
            None
        );
    }

    #[test]
    fn single_point_sweeps_compile() {
        let plan = compile(&with_cards(".dc VG 0.05 0.05 1m\n")).unwrap();
        match &plan.runs[0].analysis {
            PlannedAnalysis::Sweep { values, .. } => assert_eq!(values, &vec![0.05]),
            other => panic!("unexpected analysis {other:?}"),
        }
    }

    #[test]
    fn reversed_sources_cannot_be_swept_on_island_backends() {
        let deck = parse_full_deck(
            "rev\nVD 0 drain 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.dc VD 0 1m 0.1m\n",
        )
        .unwrap();
        let err = compile(&deck).unwrap_err();
        assert!(err.to_string().contains("positive terminal"), "{err}");
    }

    #[test]
    fn reversed_sources_cannot_drive_transients_on_island_backends() {
        // The KMC wrapper would apply the waveform to the `drain` electrode
        // with inverted polarity; the compiler must reject it like the `.dc`
        // path does.
        let deck = parse_full_deck(
            "rev tran\nVD 0 drain PULSE(0 1m 20n 40n 80n)\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.tran 10n 160n\n",
        )
        .unwrap();
        let err = compile(&deck).unwrap_err();
        assert!(err.to_string().contains("positive terminal"), "{err}");
        assert!(err.to_string().contains("driven"), "{err}");
    }

    #[test]
    fn map_axes_follow_spice_order() {
        let plan = compile(&with_cards(".dc VD -50m 50m 10m VG 0 0.16 4m\n")).unwrap();
        match &plan.runs[0].analysis {
            PlannedAnalysis::Map {
                outer_control,
                inner_control,
                outer_values,
                inner_values,
            } => {
                assert_eq!(outer_control, "VG");
                assert_eq!(inner_control, "VD");
                assert_eq!(outer_values.len(), 41);
                assert_eq!(inner_values.len(), 11);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
    }
}
