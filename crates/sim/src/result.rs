//! The unified result table every deck run produces.

use std::fmt::Write as _;

/// Aggregated linear-solver effort of one executed analysis: which
/// stationary solver ran the master-equation solves, how many solves this
/// process actually computed, and how hard they were.
///
/// This describes the *work performed by this run*, not the result values:
/// a checkpoint-resumed execution restores finished rows without re-solving
/// them, so its effort legitimately differs from the uninterrupted run's
/// while the tables stay bit-identical. That is why [`SimulationResult`]'s
/// `PartialEq` deliberately ignores this field.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverEffort {
    /// The solver that produced the computed solves (`"bicgstab-ilu0"`,
    /// `"gauss-seidel"`, … or `"mixed"` if a fallback split the run).
    pub solver: String,
    /// Stationary solves computed by this process (restored checkpoint
    /// chunks are not re-solved and do not count).
    pub solves: usize,
    /// How many of those solves were warm-started from a neighbouring
    /// bias point's converged distribution.
    pub warm_solves: usize,
    /// Total solver iterations across the computed solves.
    pub iterations: usize,
    /// The largest converged residual (or final Gauss–Seidel delta) any
    /// computed solve reported.
    pub residual_max: f64,
}

/// A column-named table of simulation output with engine provenance — the
/// one shape every backend's results come back in, whatever the analysis.
///
/// Rows are data points (bias points, grid points or sample times); columns
/// are named series (`VG`, `I(J1)`, `t`, …). Metadata records provenance:
/// which engine ran, with which seed, at which temperature.
///
/// Equality compares the result identity — label, engine, columns, rows
/// and metadata — and deliberately ignores [`SimulationResult::solver_effort`],
/// which reports per-process work (see [`SolverEffort`]).
#[derive(Debug, Clone)]
pub struct SimulationResult {
    label: String,
    engine: String,
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
    metadata: Vec<(String, String)>,
    solver_effort: Option<SolverEffort>,
}

impl PartialEq for SimulationResult {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.engine == other.engine
            && self.columns == other.columns
            && self.rows == other.rows
            && self.metadata == other.metadata
    }
}

impl SimulationResult {
    /// Assembles a result table.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the column count (an executor
    /// bug, not a user input error).
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        engine: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<f64>>,
        metadata: Vec<(String, String)>,
    ) -> Self {
        let columns_len = columns.len();
        assert!(
            rows.iter().all(|row| row.len() == columns_len),
            "every row must have one value per column"
        );
        SimulationResult {
            label: label.into(),
            engine: engine.into(),
            columns,
            rows,
            metadata,
            solver_effort: None,
        }
    }

    /// Attaches the aggregated solver effort of the run that produced this
    /// table (ignored by equality — see [`SolverEffort`]).
    #[must_use]
    pub fn with_solver_effort(mut self, effort: SolverEffort) -> Self {
        self.solver_effort = Some(effort);
        self
    }

    /// The aggregated solver effort of the producing run, when the
    /// backend reported it (master-equation sweeps and maps).
    #[must_use]
    pub fn solver_effort(&self) -> Option<&SolverEffort> {
        self.solver_effort.as_ref()
    }

    /// The analysis label (e.g. `dc VG 0.0..0.16 (41 points)`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The engine that produced the data (e.g. `master-equation`).
    #[must_use]
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The column names, in row order.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Provenance metadata as `(key, value)` pairs.
    #[must_use]
    pub fn metadata(&self) -> &[(String, String)] {
        &self.metadata
    }

    /// The values of one named column (case-insensitive).
    #[must_use]
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let index = self
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))?;
        Some(self.rows.iter().map(|row| row[index]).collect())
    }

    /// Renders the table as CSV: a header row of column names followed by
    /// one line per data row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a self-describing JSON object with `label`,
    /// `engine`, `metadata`, `columns` and `rows` keys.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"engine\": {},", json_string(&self.engine));
        out.push_str("  \"metadata\": {");
        for (index, (key, value)) in self.metadata.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(key), json_string(value));
        }
        out.push_str("},\n");
        out.push_str("  \"columns\": [");
        for (index, column) in self.columns.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(column));
        }
        out.push_str("],\n");
        out.push_str("  \"rows\": [\n");
        for (index, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|v| json_number(*v)).collect();
            let _ = write!(out, "    [{}]", cells.join(", "));
            out.push_str(if index + 1 < self.rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (JSON has no NaN/Infinity — those
/// become `null`).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SimulationResult {
        SimulationResult::new(
            "dc VG 0..0.1 (2 points)",
            "master-equation",
            vec!["VG".into(), "I(J1)".into()],
            vec![vec![0.0, 1e-12], vec![0.1, 2.5e-9]],
            vec![("seed".into(), "7".into())],
        )
    }

    #[test]
    fn accessors_are_consistent() {
        let t = table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.columns().len(), 2);
        assert_eq!(t.column("i(j1)").unwrap(), vec![1e-12, 2.5e-9]);
        assert!(t.column("nope").is_none());
        assert_eq!(t.engine(), "master-equation");
        assert_eq!(t.metadata()[0].0, "seed");
    }

    #[test]
    #[should_panic(expected = "one value per column")]
    fn mismatched_rows_panic() {
        let _ = SimulationResult::new(
            "x",
            "y",
            vec!["a".into(), "b".into()],
            vec![vec![1.0]],
            Vec::new(),
        );
    }

    #[test]
    fn csv_round_trips_values_exactly() {
        let csv = table().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("VG,I(J1)"));
        let row: Vec<f64> = lines
            .next()
            .unwrap()
            .split(',')
            .map(|cell| cell.parse().unwrap())
            .collect();
        assert_eq!(row, vec![0.0, 1e-12]);
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let json = table().to_json();
        assert!(json.contains("\"engine\": \"master-equation\""));
        assert!(json.contains("\"columns\": [\"VG\", \"I(J1)\"]"));
        assert!(json.contains("\"seed\": \"7\""));
        assert!(json.trim_end().ends_with('}'));
        // Balanced braces and brackets (cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5e-9), "1.5e-9");
    }

    #[test]
    fn solver_effort_is_carried_but_ignored_by_equality() {
        let plain = table();
        let effortful = table().with_solver_effort(SolverEffort {
            solver: "bicgstab-ilu0".into(),
            solves: 12,
            warm_solves: 10,
            iterations: 84,
            residual_max: 3e-14,
        });
        assert_eq!(effortful.solver_effort().unwrap().solves, 12);
        assert!(plain.solver_effort().is_none());
        // A resumed run restores rows without re-solving: effort differs,
        // the result identity must not.
        assert_eq!(plain, effortful);
    }
}
