//! Deck-level deterministic replay: `record` a deck run's every output
//! bit into a trace directory, then `verify` it by re-executing the deck
//! and diffing the streams.
//!
//! A trace directory is self-contained — it carries the deck itself, so a
//! verification months later (or on another machine, or under a newer
//! build) needs nothing but the directory:
//!
//! ```text
//! <dir>/deck.cir       the deck, serialized losslessly at record time
//! <dir>/a<i>-….trace   one se-exec trace per analysis (geometry, chunk
//!                      hashes, raw-bits payloads, engine provenance)
//! <dir>/manifest.txt   the completion marker, written last: format
//!                      version, deck fingerprint, the analysis file list
//! ```
//!
//! [`record_deck`] executes the plan through per-analysis
//! [`se_exec::TraceSink`]s (any worker count — the recorded bytes are
//! identical) and writes the manifest only after every analysis finished,
//! so a crashed recording is refused by [`verify_trace_dir`] rather than
//! half-verified. [`verify_trace_dir`] re-parses the embedded deck,
//! recompiles it, refuses fingerprint or geometry drift, re-executes every
//! analysis against a [`se_exec::VerifySink`], and reports per analysis:
//! trace integrity (recomputed chunk hashes) and the first execution
//! [`Divergence`], localized to chunk, item, row and column with both
//! values as raw bits and decimals.

use crate::error::SimError;
use crate::exec::{prepare_deck, ExecOptions};
use crate::plan::{compile, SimulationPlan};
use crate::result::SimulationResult;
use se_exec::trace::{Divergence, JobTrace, TraceSink, VerifySink};
use se_exec::{
    content_fingerprint, run_batch, sanitize_job_id, CancelToken, ChunkTask, JobBuilder,
};
use se_netlist::{parse_full_deck, Deck};
use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// The format tag of a trace directory manifest.
const MANIFEST_MAGIC: &str = "se-sim-trace v1";

/// The deck file name inside a trace directory.
const DECK_FILE: &str = "deck.cir";

/// The manifest file name inside a trace directory.
const MANIFEST_FILE: &str = "manifest.txt";

/// The trace file name of analysis `index` with the given label.
fn trace_file_name(index: usize, label: &str) -> String {
    format!("a{index}-{}.trace", sanitize_job_id(label))
}

/// What [`record_deck`] wrote: where, and what the verifier will check.
#[derive(Debug, Clone)]
pub struct RecordSummary {
    /// The trace directory.
    pub dir: PathBuf,
    /// The deck-content fingerprint stamped into every trace header.
    pub fingerprint: u64,
    /// One `(analysis label, trace file name, item count)` per analysis.
    pub analyses: Vec<(String, String, usize)>,
}

/// Records a deck run: executes every analysis of `plan` through the
/// shared worker pool, streaming every output bit into per-analysis trace
/// files under `dir`, and returns the result tables (identical to
/// [`crate::execute_with_options`]) plus a [`RecordSummary`].
///
/// The manifest is written last — only after every analysis completed — so
/// an interrupted recording leaves no verifiable directory behind.
///
/// # Errors
///
/// Propagates backend construction and solve errors, plus trace I/O
/// failures as [`SimError::Exec`].
pub fn record_deck(
    deck: &Deck,
    plan: &SimulationPlan,
    options: &ExecOptions,
    dir: &Path,
) -> Result<(Vec<SimulationResult>, RecordSummary), SimError> {
    let deck_text = deck.to_deck_string();
    let fingerprint = content_fingerprint(&deck_text);
    fs::create_dir_all(dir)
        .map_err(|e| SimError::Exec(format!("cannot create trace dir `{}`: {e}", dir.display())))?;
    fs::write(dir.join(DECK_FILE), &deck_text)
        .map_err(|e| SimError::Exec(format!("cannot write `{DECK_FILE}`: {e}")))?;

    let label = options.label.clone().unwrap_or_else(|| plan.title.clone());
    let prepared = prepare_deck(deck, plan, &label, options)?;

    // One trace sink per analysis, created up front (truncating any stale
    // recording of the same name).
    let mut sinks: Vec<TraceSink<BufWriter<fs::File>>> = Vec::with_capacity(prepared.len());
    let mut files: Vec<String> = Vec::with_capacity(prepared.len());
    for (index, prep) in prepared.iter().enumerate() {
        let name = trace_file_name(index, &prep.result_label);
        let path = dir.join(&name);
        let file = fs::File::create(&path)
            .map_err(|e| SimError::Exec(format!("cannot create `{}`: {e}", path.display())))?;
        let sink = TraceSink::new(BufWriter::new(file), fingerprint)
            .with_meta("deck", &plan.title)
            .with_meta("analysis", &prep.result_label)
            .with_meta("engine", prep.engine_name())
            .with_meta("columns", prep.columns.join(","))
            .with_meta(
                "options",
                format!(
                    "temp={:?} seed={} repeats={}",
                    plan.temperature,
                    plan.seed,
                    plan.repeats
                        .map_or_else(|| "none".into(), |r| r.to_string())
                ),
            );
        sinks.push(sink);
        files.push(name);
    }

    // Bind and run every analysis on one pool, exactly like execute().
    let mut jobs = Vec::with_capacity(prepared.len());
    for (prep, sink) in prepared.iter().zip(sinks.iter_mut()) {
        let job = JobBuilder::new(prep.spec)
            .label(prep.job_label.clone())
            .collect()
            .build(sink, |index, seed| prep.solve_item(index, seed))
            .map_err(SimError::from)?;
        jobs.push(job);
    }
    let tasks: Vec<&dyn ChunkTask> = jobs.iter().map(|job| job as &dyn ChunkTask).collect();
    run_batch(
        &tasks,
        options.workers,
        &options.cancel.clone().unwrap_or_default(),
    );
    drop(tasks);

    let mut results = Vec::with_capacity(prepared.len());
    let mut analyses = Vec::with_capacity(prepared.len());
    for ((job, prep), file) in jobs.into_iter().zip(&prepared).zip(&files) {
        let (blocks, report) = job.finish().map_err(SimError::from)?;
        analyses.push((prep.result_label.clone(), file.clone(), report.items));
        results.push(prep.assemble(blocks));
    }

    // Every analysis completed: write the manifest (the completion marker).
    let mut manifest = format!(
        "{MANIFEST_MAGIC} fp={fingerprint:016x} analyses={}\n",
        files.len()
    );
    for (index, file) in files.iter().enumerate() {
        manifest.push_str(&format!("analysis {index} {file}\n"));
    }
    fs::write(dir.join(MANIFEST_FILE), manifest)
        .map_err(|e| SimError::Exec(format!("cannot write `{MANIFEST_FILE}`: {e}")))?;

    Ok((
        results,
        RecordSummary {
            dir: dir.to_path_buf(),
            fingerprint,
            analyses,
        },
    ))
}

/// One analysis' verification outcome.
#[derive(Debug, Clone)]
pub struct AnalysisVerdict {
    /// The analysis label (the directive it came from).
    pub label: String,
    /// The engine that produced — and re-produced — the trace.
    pub engine: String,
    /// Items compared.
    pub items: usize,
    /// Chunks in the trace.
    pub chunks: usize,
    /// `Some(chunk id)` if the trace file itself no longer matches its
    /// recorded per-chunk content hash (bit rot / hand edits), localized
    /// to the first corrupt chunk.
    pub corrupt_chunk: Option<usize>,
    /// The first point where the re-execution differed from the recording.
    pub divergence: Option<Divergence>,
    /// Provenance recorded at trace time (engine, columns, options).
    pub provenance: Vec<(String, String)>,
}

impl AnalysisVerdict {
    /// `true` when the trace is intact and the re-execution reproduced
    /// every bit.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt_chunk.is_none() && self.divergence.is_none()
    }
}

/// A whole trace directory's verification outcome.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The deck title.
    pub title: String,
    /// The deck-content fingerprint both sides agreed on.
    pub fingerprint: u64,
    /// One verdict per analysis, in deck order.
    pub analyses: Vec<AnalysisVerdict>,
}

impl VerifyReport {
    /// `true` when every analysis verified clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.analyses.iter().all(AnalysisVerdict::is_clean)
    }
}

/// Reads one file of the trace directory.
fn read_dir_file(dir: &Path, name: &str) -> Result<String, SimError> {
    fs::read_to_string(dir.join(name)).map_err(|e| {
        SimError::Exec(format!(
            "cannot read `{}`: {e} — is `{}` a complete trace directory? (an \
             interrupted recording writes no manifest)",
            dir.join(name).display(),
            dir.display()
        ))
    })
}

/// Parses the manifest: the fingerprint and the ordered trace file names.
fn parse_manifest(text: &str) -> Result<(u64, Vec<String>), SimError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let rest = header.strip_prefix(MANIFEST_MAGIC).ok_or_else(|| {
        SimError::Exec(format!(
            "not a `{MANIFEST_MAGIC}` manifest: starts `{header}`"
        ))
    })?;
    let mut fingerprint = None;
    let mut declared = None;
    for field in rest.split_whitespace() {
        match field.split_once('=') {
            Some(("fp", value)) => fingerprint = u64::from_str_radix(value, 16).ok(),
            Some(("analyses", value)) => declared = value.parse::<usize>().ok(),
            _ => {
                return Err(SimError::Exec(format!(
                    "malformed manifest field `{field}`"
                )))
            }
        }
    }
    let (Some(fingerprint), Some(declared)) = (fingerprint, declared) else {
        return Err(SimError::Exec(format!(
            "incomplete manifest header `{header}`"
        )));
    };
    let mut files = Vec::with_capacity(declared);
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some("analysis"), Some(index), Some(file), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(SimError::Exec(format!("malformed manifest line `{line}`")));
        };
        if index.parse() != Ok(files.len()) {
            return Err(SimError::Exec(format!(
                "manifest analysis `{index}` out of order (expected {})",
                files.len()
            )));
        }
        files.push(file.to_string());
    }
    if files.len() != declared {
        return Err(SimError::Exec(format!(
            "manifest declares {declared} analyses but lists {}",
            files.len()
        )));
    }
    Ok((fingerprint, files))
}

/// Verifies a trace directory: re-parses the embedded deck, recompiles it,
/// re-executes every analysis under `options` (any worker count) and
/// compares every output bit against the recording.
///
/// Returns a per-analysis [`VerifyReport`]; a report is returned even when
/// divergences are found — only *structural* failures (missing manifest,
/// fingerprint mismatch, geometry drift, solver errors) are `Err`.
///
/// # Errors
///
/// Missing or malformed trace files, a deck whose fingerprint no longer
/// matches the recording, geometry drift (the recompiled plan visits a
/// different item count or seed than the trace), and execution errors.
pub fn verify_trace_dir(dir: &Path, options: &ExecOptions) -> Result<VerifyReport, SimError> {
    let (fingerprint, files) = parse_manifest(&read_dir_file(dir, MANIFEST_FILE)?)?;
    let deck_text = read_dir_file(dir, DECK_FILE)?;
    let deck = parse_full_deck(&deck_text)?;
    let found = content_fingerprint(&deck.to_deck_string());
    if found != fingerprint {
        return Err(SimError::Exec(format!(
            "deck fingerprint mismatch: manifest says {fingerprint:016x}, the embedded \
             deck hashes to {found:016x} — `{DECK_FILE}` was edited after recording",
        )));
    }
    let plan = compile(&deck)?;
    let label = options.label.clone().unwrap_or_else(|| plan.title.clone());
    let mut prepared = prepare_deck(&deck, &plan, &label, options)?;
    if prepared.len() != files.len() {
        return Err(SimError::Exec(format!(
            "the deck compiles to {} analyses but the trace recorded {}",
            prepared.len(),
            files.len()
        )));
    }

    // Load every trace, check geometry, force the recorded chunk layout.
    let mut traces = Vec::with_capacity(files.len());
    for (prep, file) in prepared.iter_mut().zip(&files) {
        let trace = JobTrace::parse(&read_dir_file(dir, file)?)
            .map_err(|e| SimError::Exec(format!("`{file}`: {e}")))?;
        if trace.fingerprint != fingerprint {
            return Err(SimError::Exec(format!(
                "`{file}` carries fingerprint {:016x}, manifest says {fingerprint:016x}",
                trace.fingerprint
            )));
        }
        if trace.items != prep.spec.items() || trace.seed != prep.spec.seed() {
            return Err(SimError::Exec(format!(
                "`{file}` geometry drift: trace has items={} seed={}, the recompiled \
                 plan produces items={} seed={}",
                trace.items,
                trace.seed,
                prep.spec.items(),
                prep.spec.seed()
            )));
        }
        prep.spec = prep.spec.with_chunk(trace.chunk);
        traces.push(trace);
    }

    // Re-execute everything on one pool, comparing as the streams emit.
    let mut sinks: Vec<VerifySink<'_>> = traces.iter().map(VerifySink::new).collect();
    let mut jobs = Vec::with_capacity(prepared.len());
    for (prep, sink) in prepared.iter().zip(sinks.iter_mut()) {
        let job = JobBuilder::new(prep.spec)
            .label(prep.job_label.clone())
            .build(sink, |index, seed| prep.solve_item(index, seed))
            .map_err(SimError::from)?;
        jobs.push(job);
    }
    let tasks: Vec<&dyn ChunkTask> = jobs.iter().map(|job| job as &dyn ChunkTask).collect();
    run_batch(&tasks, options.workers, &CancelToken::new());
    drop(tasks);
    for job in jobs {
        job.finish().map_err(SimError::from)?;
    }

    let analyses = prepared
        .iter()
        .zip(&traces)
        .zip(&sinks)
        .map(|((prep, trace), sink)| AnalysisVerdict {
            label: prep.result_label.clone(),
            engine: prep.engine_name().to_string(),
            items: trace.items,
            chunks: trace.chunks.len(),
            corrupt_chunk: trace.integrity_check().err(),
            divergence: sink.divergence(),
            provenance: trace.meta.clone(),
        })
        .collect();
    Ok(VerifyReport {
        title: plan.title.clone(),
        fingerprint,
        analyses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const SET_DECK: &str = "single SET\nVD drain 0 1m\nVG gate 0 0\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n.options temp=1 seed=3\n.dc VG 0 0.16 16m\n.print dc i(J1)\n";

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "se-sim-trace-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record_set_deck(dir: &Path) -> (Vec<SimulationResult>, RecordSummary) {
        let deck = parse_full_deck(SET_DECK).unwrap();
        let plan = compile(&deck).unwrap();
        record_deck(&deck, &plan, &ExecOptions::default(), dir).unwrap()
    }

    #[test]
    fn record_then_verify_is_clean_and_results_match_execute() {
        let dir = temp_dir("roundtrip");
        let (results, summary) = record_set_deck(&dir);
        let deck = parse_full_deck(SET_DECK).unwrap();
        let plan = compile(&deck).unwrap();
        assert_eq!(results, crate::exec::execute(&deck, &plan).unwrap());
        assert_eq!(summary.analyses.len(), 1);
        // 11 master bias points schedule as two warm-started blocks.
        assert_eq!(summary.analyses[0].2, 2);

        let report = verify_trace_dir(&dir, &ExecOptions::default()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.analyses[0].engine, "master-equation");
        assert_eq!(report.analyses[0].items, 2);
        assert!(report.analyses[0]
            .provenance
            .iter()
            .any(|(k, v)| k == "options" && v.contains("seed=3")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_edited_deck_is_refused_by_fingerprint() {
        let dir = temp_dir("edited");
        record_set_deck(&dir);
        let deck_path = dir.join(DECK_FILE);
        let text = fs::read_to_string(&deck_path).unwrap();
        fs::write(&deck_path, text.replace("seed=3", "seed=4")).unwrap();
        let err = verify_trace_dir(&dir, &ExecOptions::default()).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_manifest_is_refused_as_incomplete() {
        let dir = temp_dir("nomanifest");
        record_set_deck(&dir);
        fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = verify_trace_dir(&dir, &ExecOptions::default()).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_payload_is_localized_to_chunk_and_item() {
        let dir = temp_dir("corrupt");
        let (_, summary) = record_set_deck(&dir);
        let trace_path = dir.join(&summary.analyses[0].1);
        // Flip the last hex digit of item 1's payload (the second
        // warm-started block of the sweep).
        let text = fs::read_to_string(&trace_path).unwrap();
        let corrupted: String = text
            .lines()
            .map(|line| {
                if line.starts_with("item 1 ") {
                    let (head, tail) = line.split_at(line.len() - 1);
                    let last = if tail == "0" { "1" } else { "0" };
                    format!("{head}{last}\n")
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        fs::write(&trace_path, corrupted).unwrap();

        let report = verify_trace_dir(&dir, &ExecOptions::default()).unwrap();
        assert!(!report.is_clean());
        let verdict = &report.analyses[0];
        // The file itself no longer hashes clean…
        let chunk = 1 / JobTrace::parse(&fs::read_to_string(&trace_path).unwrap())
            .unwrap()
            .chunk;
        assert_eq!(verdict.corrupt_chunk, Some(chunk));
        // …and the re-execution pinpoints the exact item.
        let divergence = verdict.divergence.expect("must diverge");
        assert_eq!(divergence.item, 1);
        assert_eq!(divergence.chunk, chunk);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifests_parse_strictly() {
        assert!(parse_manifest("bogus").is_err());
        assert!(parse_manifest("se-sim-trace v1 fp=00 analyses=1\n").is_err());
        assert!(
            parse_manifest("se-sim-trace v1 fp=00 analyses=1\nanalysis 1 a.trace\n").is_err(),
            "out-of-order analysis index must be refused"
        );
        let (fp, files) =
            parse_manifest("se-sim-trace v1 fp=0bad analyses=1\nanalysis 0 a.trace\n").unwrap();
        assert_eq!(fp, 0xbad);
        assert_eq!(files, vec!["a.trace".to_string()]);
    }
}
