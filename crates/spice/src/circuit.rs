//! Analysis-ready circuit representation and the operating-point result
//! type.

use crate::dc::{self, NewtonOptions};
use crate::error::SpiceError;
use se_netlist::{Netlist, Node};
use std::collections::HashMap;

/// A netlist prepared for MNA-based analysis: non-ground nodes and voltage
/// sources are assigned rows of the MNA system.
#[derive(Debug, Clone)]
pub struct Circuit {
    netlist: Netlist,
    /// Non-ground node → unknown index (0-based).
    node_rows: HashMap<Node, usize>,
    /// Voltage-source name (lower case) → branch unknown index (0-based,
    /// offset by the node count when used in the MNA system).
    source_rows: HashMap<String, usize>,
    /// Simulation temperature for the SET compact models, kelvin.
    temperature: f64,
}

impl Circuit {
    /// Prepares a netlist for analysis at the default temperature of 4.2 K
    /// (the liquid-helium operating point typical of the cited hybrid
    /// SET/CMOS experiments).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if the netlist fails validation.
    pub fn new(netlist: &Netlist) -> Result<Self, SpiceError> {
        Circuit::with_temperature(netlist, 4.2)
    }

    /// Prepares a netlist for analysis at the given temperature (used by the
    /// analytic SET compact model).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] for an invalid netlist and
    /// [`SpiceError::InvalidArgument`] for a negative or non-finite
    /// temperature.
    pub fn with_temperature(netlist: &Netlist, temperature: f64) -> Result<Self, SpiceError> {
        if temperature < 0.0 || !temperature.is_finite() {
            return Err(SpiceError::InvalidArgument(format!(
                "temperature must be non-negative and finite, got {temperature}"
            )));
        }
        netlist.validate()?;
        let mut node_rows = HashMap::new();
        for node in netlist.nodes().iter() {
            let next = node_rows.len();
            node_rows.insert(node, next);
        }
        let mut source_rows = HashMap::new();
        for element in netlist.voltage_sources() {
            let next = source_rows.len();
            source_rows.insert(element.name().to_ascii_lowercase(), next);
        }
        Ok(Circuit {
            netlist: netlist.clone(),
            node_rows,
            source_rows,
            temperature,
        })
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Simulation temperature in kelvin.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Number of non-ground nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_rows.len()
    }

    /// Number of voltage sources (extra MNA unknowns).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.source_rows.len()
    }

    /// Total size of the MNA system.
    #[must_use]
    pub fn system_size(&self) -> usize {
        self.node_count() + self.source_count()
    }

    /// Unknown index of a node (`None` for ground).
    #[must_use]
    pub fn node_row(&self, node: Node) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            self.node_rows.get(&node).copied()
        }
    }

    /// MNA row of a voltage source's branch current.
    #[must_use]
    pub fn source_row(&self, name: &str) -> Option<usize> {
        self.source_rows
            .get(&name.to_ascii_lowercase())
            .map(|&idx| self.node_count() + idx)
    }

    /// Computes the DC operating point with default Newton options.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NoConvergence`] if the Newton iteration fails
    /// even with `gmin` stepping, or [`SpiceError::SingularSystem`] for a
    /// structurally singular circuit.
    pub fn dc_operating_point(&self) -> Result<OperatingPoint, SpiceError> {
        dc::solve_dc(self, &NewtonOptions::default())
    }

    /// Computes the DC operating point with explicit Newton options.
    ///
    /// # Errors
    ///
    /// See [`Circuit::dc_operating_point`].
    pub fn dc_operating_point_with(
        &self,
        options: &NewtonOptions,
    ) -> Result<OperatingPoint, SpiceError> {
        dc::solve_dc(self, options)
    }

    /// Builds an operating point from a raw solution vector.
    #[must_use]
    pub(crate) fn operating_point_from_solution(&self, solution: Vec<f64>) -> OperatingPoint {
        let mut node_voltages = HashMap::new();
        for (node, &row) in &self.node_rows {
            if let Some(name) = self.netlist.node_name(*node) {
                node_voltages.insert(name.to_string(), solution[row]);
            }
        }
        let mut source_currents = HashMap::new();
        for (name, &idx) in &self.source_rows {
            source_currents.insert(name.clone(), solution[self.node_count() + idx]);
        }
        OperatingPoint {
            solution,
            node_voltages,
            source_currents,
        }
    }
}

/// The solved DC (or per-time-step) state of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    solution: Vec<f64>,
    node_voltages: HashMap<String, f64>,
    source_currents: HashMap<String, f64>,
}

impl OperatingPoint {
    /// Voltage of the named node (volt); ground is always 0.
    #[must_use]
    pub fn voltage(&self, node: &str) -> Option<f64> {
        if node == "0" || node.eq_ignore_ascii_case("gnd") {
            return Some(0.0);
        }
        // Node names are stored with their original spelling; fall back to a
        // case-insensitive scan.
        self.node_voltages.get(node).copied().or_else(|| {
            self.node_voltages
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(node))
                .map(|(_, &v)| v)
        })
    }

    /// Current through the named voltage source (ampere), flowing from its
    /// positive terminal through the source to its negative terminal.
    #[must_use]
    pub fn source_current(&self, source: &str) -> Option<f64> {
        self.source_currents
            .get(&source.to_ascii_lowercase())
            .copied()
    }

    /// The raw MNA solution vector (node voltages then branch currents).
    #[must_use]
    pub fn solution(&self) -> &[f64] {
        &self.solution
    }

    /// Iterates over `(node name, voltage)` pairs.
    pub fn voltages(&self) -> impl Iterator<Item = (&str, f64)> {
        self.node_voltages.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;

    #[test]
    fn rows_are_assigned_to_all_nodes_and_sources() {
        let netlist = parse_deck("divider\nV1 in 0 1.0\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        assert_eq!(circuit.node_count(), 2);
        assert_eq!(circuit.source_count(), 1);
        assert_eq!(circuit.system_size(), 3);
        let in_node = netlist.find_node("in").unwrap();
        assert!(circuit.node_row(in_node).is_some());
        assert_eq!(circuit.node_row(Node::GROUND), None);
        assert!(circuit.source_row("V1").is_some());
        assert!(circuit.source_row("v1").is_some());
        assert!(circuit.source_row("nope").is_none());
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let netlist = parse_deck("dangling\nV1 a 0 1\nR1 a b 1k\n").unwrap();
        assert!(Circuit::new(&netlist).is_err());
    }

    #[test]
    fn invalid_temperature_is_rejected() {
        let netlist = parse_deck("ok\nV1 a 0 1\nR1 a 0 1k\n").unwrap();
        assert!(Circuit::with_temperature(&netlist, -1.0).is_err());
        assert!(Circuit::with_temperature(&netlist, f64::NAN).is_err());
    }

    #[test]
    fn operating_point_lookup_is_case_insensitive() {
        let netlist = parse_deck("divider\nV1 In 0 2.0\nR1 In Out 1k\nR2 Out 0 3k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let op = circuit.dc_operating_point().unwrap();
        assert!((op.voltage("out").unwrap() - 1.5).abs() < 1e-6);
        assert!((op.voltage("OUT").unwrap() - 1.5).abs() < 1e-6);
        assert_eq!(op.voltage("0"), Some(0.0));
        assert_eq!(op.voltage("does-not-exist"), None);
        assert_eq!(op.voltages().count(), 2);
    }
}
