//! MNA assembly and Newton–Raphson DC solution.

use crate::circuit::{Circuit, OperatingPoint};
use crate::devices::{
    capacitor, diode::DiodeModel, mosfet::MosfetModel, resistor, set_analytic::SetAnalyticModel,
    sources, Stamps,
};
use crate::error::SpiceError;
use se_netlist::ElementKind;
use se_numeric::{LuDecomposition, Matrix};
use std::collections::HashMap;

/// Options controlling the Newton–Raphson iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of Newton iterations per solve.
    pub max_iterations: usize,
    /// Absolute voltage convergence tolerance in volt.
    pub abs_tolerance: f64,
    /// Relative voltage convergence tolerance.
    pub rel_tolerance: f64,
    /// Minimum conductance added from every node to ground (SPICE `gmin`).
    pub gmin: f64,
    /// Maximum voltage change per node per Newton step (damping), in volt.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 200,
            abs_tolerance: 1e-9,
            rel_tolerance: 1e-6,
            gmin: 1e-12,
            max_step: 0.5,
        }
    }
}

/// What the assembler is building: a DC system or one backward-Euler
/// transient step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnalysisMode<'a> {
    /// DC: capacitors open.
    Dc,
    /// One transient step of length `dt` from `previous` (the full MNA
    /// solution vector at the previous time point).
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Previous solution vector.
        previous: &'a [f64],
    },
}

/// Assembles the linearised MNA system around `solution`.
///
/// `source_overrides` maps voltage-source names (lower case) to values that
/// replace their DC value — used by sweeps and time-dependent stimuli.
pub(crate) fn assemble(
    circuit: &Circuit,
    solution: &[f64],
    mode: AnalysisMode<'_>,
    gmin: f64,
    source_overrides: &HashMap<String, f64>,
) -> (Matrix, Vec<f64>) {
    let n = circuit.system_size();
    let mut matrix = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    let mut stamps = Stamps::new(&mut matrix, &mut rhs);

    for element in circuit.netlist().elements() {
        let nodes = element.nodes();
        let row = |i: usize| circuit.node_row(nodes[i]);
        match element.kind() {
            ElementKind::Resistor { resistance } => {
                resistor::stamp(&mut stamps, row(0), row(1), *resistance);
            }
            ElementKind::Capacitor { capacitance } => match mode {
                AnalysisMode::Dc => {
                    capacitor::stamp_dc(&mut stamps, row(0), row(1), *capacitance);
                }
                AnalysisMode::Transient { dt, previous } => {
                    capacitor::stamp_transient(
                        &mut stamps,
                        row(0),
                        row(1),
                        *capacitance,
                        dt,
                        previous,
                    );
                }
            },
            ElementKind::TunnelJunction {
                capacitance,
                resistance,
            } => {
                // SPICE-level approximation: an ohmic tunnel resistance in
                // parallel with the junction capacitance. This deliberately
                // ignores Coulomb blockade — see the crate-level discussion.
                resistor::stamp(&mut stamps, row(0), row(1), *resistance);
                if let AnalysisMode::Transient { dt, previous } = mode {
                    capacitor::stamp_transient(
                        &mut stamps,
                        row(0),
                        row(1),
                        *capacitance,
                        dt,
                        previous,
                    );
                }
            }
            ElementKind::VoltageSource { voltage } => {
                let branch = circuit
                    .source_row(element.name())
                    .expect("every voltage source has a branch row");
                let value = source_overrides
                    .get(&element.name().to_ascii_lowercase())
                    .copied()
                    .unwrap_or(*voltage);
                sources::stamp_voltage_source(&mut stamps, row(0), row(1), branch, value);
            }
            ElementKind::CurrentSource { current } => {
                sources::stamp_current_source(&mut stamps, row(0), row(1), *current);
            }
            ElementKind::Diode {
                saturation_current,
                ideality,
            } => {
                DiodeModel::new(*saturation_current, *ideality).stamp(
                    &mut stamps,
                    row(0),
                    row(1),
                    solution,
                );
            }
            ElementKind::Mosfet { params } => {
                MosfetModel::new(*params).stamp(&mut stamps, row(0), row(1), row(2), solution);
            }
            ElementKind::SetTransistor { params } => {
                SetAnalyticModel::new(*params, circuit.temperature()).stamp(
                    &mut stamps,
                    row(0),
                    row(1),
                    row(2),
                    solution,
                );
            }
        }
    }

    // gmin from every node to ground keeps otherwise-floating nodes solvable.
    for node_row in 0..circuit.node_count() {
        stamps.conductance(Some(node_row), None, gmin);
    }

    (matrix, rhs)
}

/// Runs the damped Newton iteration for the given mode.
pub(crate) fn newton(
    circuit: &Circuit,
    options: &NewtonOptions,
    mode: AnalysisMode<'_>,
    initial: Vec<f64>,
    source_overrides: &HashMap<String, f64>,
) -> Result<Vec<f64>, SpiceError> {
    newton_with_gmin(
        circuit,
        options,
        mode,
        initial,
        source_overrides,
        options.gmin,
    )
}

fn newton_with_gmin(
    circuit: &Circuit,
    options: &NewtonOptions,
    mode: AnalysisMode<'_>,
    mut x: Vec<f64>,
    source_overrides: &HashMap<String, f64>,
    gmin: f64,
) -> Result<Vec<f64>, SpiceError> {
    let n = circuit.system_size();
    if x.len() != n {
        x = vec![0.0; n];
    }
    let mut last_delta = f64::INFINITY;
    for _ in 0..options.max_iterations {
        let (matrix, rhs) = assemble(circuit, &x, mode, gmin, source_overrides);
        let lu =
            LuDecomposition::new(&matrix).map_err(|e| SpiceError::SingularSystem(e.to_string()))?;
        let x_new = lu.solve(&rhs)?;
        // Raw Newton step size (before damping) decides convergence.
        let max_delta = (0..n)
            .map(|i| (x_new[i] - x[i]).abs())
            .fold(0.0_f64, f64::max);
        // Damped update.
        for i in 0..n {
            let mut delta = x_new[i] - x[i];
            if delta.abs() > options.max_step {
                delta = options.max_step * delta.signum();
            }
            x[i] += delta;
        }
        let scale = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if max_delta <= options.abs_tolerance + options.rel_tolerance * scale {
            return Ok(x);
        }
        last_delta = max_delta;
    }
    Err(SpiceError::NoConvergence {
        iterations: options.max_iterations,
        residual: last_delta,
    })
}

/// Solves the DC operating point, falling back to `gmin` stepping when the
/// plain Newton iteration does not converge.
pub(crate) fn solve_dc(
    circuit: &Circuit,
    options: &NewtonOptions,
) -> Result<OperatingPoint, SpiceError> {
    solve_dc_with_overrides(circuit, options, &HashMap::new(), None)
}

/// DC solve with source overrides and an optional initial guess (used by
/// sweeps and the transient initial condition).
pub(crate) fn solve_dc_with_overrides(
    circuit: &Circuit,
    options: &NewtonOptions,
    source_overrides: &HashMap<String, f64>,
    initial: Option<Vec<f64>>,
) -> Result<OperatingPoint, SpiceError> {
    let start = initial.unwrap_or_else(|| vec![0.0; circuit.system_size()]);
    match newton(
        circuit,
        options,
        AnalysisMode::Dc,
        start.clone(),
        source_overrides,
    ) {
        Ok(solution) => Ok(circuit.operating_point_from_solution(solution)),
        Err(_) => {
            // gmin stepping: start from a heavily damped circuit and relax.
            let mut x = start;
            let mut gmin = 1e-3;
            while gmin >= options.gmin {
                x = newton_with_gmin(
                    circuit,
                    options,
                    AnalysisMode::Dc,
                    x,
                    source_overrides,
                    gmin,
                )?;
                gmin /= 100.0;
            }
            let solution = newton_with_gmin(
                circuit,
                options,
                AnalysisMode::Dc,
                x,
                source_overrides,
                options.gmin,
            )?;
            Ok(circuit.operating_point_from_solution(solution))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;

    fn solve(deck: &str) -> OperatingPoint {
        let netlist = parse_deck(deck).unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        circuit.dc_operating_point().unwrap()
    }

    #[test]
    fn resistive_divider() {
        let op = solve("divider\nV1 in 0 1.0\nR1 in out 1k\nR2 out 0 3k\n");
        assert!((op.voltage("out").unwrap() - 0.75).abs() < 1e-9);
        // Source current: 1 V across 4 kΩ, flowing out of the + terminal.
        assert!((op.source_current("V1").unwrap() + 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let op = solve("isrc\nI1 0 out 1m\nR1 out 0 2k\n");
        assert!((op.voltage("out").unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn diode_forward_drop_is_about_600_millivolts() {
        let op = solve("diode\nV1 in 0 5\nR1 in a 10k\nD1 a 0\n");
        let va = op.voltage("a").unwrap();
        assert!(va > 0.5 && va < 0.75, "diode drop {va}");
    }

    #[test]
    fn nmos_common_source_amplifier_pulls_down() {
        // NMOS with grounded source, gate well above threshold, drain through
        // a resistor to 1.8 V: the drain must sit far below the supply.
        let op = solve("cs amp\nVDD vdd 0 1.8\nVG g 0 1.2\nRD vdd d 50k\nM1 d g 0 NMOS\n");
        let vd = op.voltage("d").unwrap();
        assert!(vd < 0.4, "drain voltage {vd} should be pulled low");
        // With the gate off the drain floats up to the supply.
        let op = solve("cs amp off\nVDD vdd 0 1.8\nVG g 0 0.0\nRD vdd d 50k\nM1 d g 0 NMOS\n");
        let vd = op.voltage("d").unwrap();
        assert!(
            (vd - 1.8).abs() < 1e-3,
            "drain voltage {vd} should float to VDD"
        );
    }

    #[test]
    fn tunnel_junctions_act_as_resistors_in_spice_mode() {
        // Two equal junctions in series across 1 mV: the midpoint halves the
        // bias, blockade is (deliberately) absent.
        let op =
            solve("double junction\nV1 top 0 1m\nJ1 top mid C=1a R=100k\nJ2 mid 0 C=1a R=100k\n");
        assert!((op.voltage("mid").unwrap() - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn set_compact_model_modulates_a_voltage_divider() {
        // SET in series with a resistor: at the gate peak the SET conducts
        // and pulls the output down; in blockade the output stays high.
        let period = se_units::constants::E / 1e-18;
        let on_deck = format!(
            "set divider\nVDD vdd 0 5m\nVG g 0 {}\nRL vdd out 10meg\nX1 out g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n",
            period / 2.0
        );
        let off_deck = "set divider\nVDD vdd 0 5m\nVG g 0 0\nRL vdd out 10meg\nX1 out g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n".to_string();
        let on = solve(&on_deck).voltage("out").unwrap();
        let off = solve(&off_deck).voltage("out").unwrap();
        assert!(
            on < 0.6 * off,
            "SET at its conductance peak should pull the output down: on {on}, off {off}"
        );
    }

    #[test]
    fn floating_node_is_handled_by_gmin() {
        // A node connected only through a capacitor is floating in DC; gmin
        // pins it to ground instead of producing a singular system.
        let op = solve("float\nV1 a 0 1\nR1 a 0 1k\nC1 a f 1p\nC2 f 0 1p\n");
        assert!(op.voltage("f").unwrap().abs() < 1.0);
    }

    #[test]
    fn newton_options_control_iteration_budget() {
        let netlist = parse_deck("diode\nV1 in 0 5\nR1 in a 10k\nD1 a 0\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let options = NewtonOptions {
            max_iterations: 1,
            ..Default::default()
        };
        assert!(circuit.dc_operating_point_with(&options).is_err());
    }
}
