//! Capacitor stamps: open circuit in DC, backward-Euler companion model in
//! transient analysis.

use super::{node_voltage, NodeIndex, Stamps};

/// Stamps the backward-Euler companion model of a capacitor for one
/// transient step of length `dt`: a conductance `C/dt` in parallel with a
/// current source `C/dt · v_previous`.
///
/// # Panics
///
/// Panics if `capacitance` or `dt` is not strictly positive.
pub fn stamp_transient(
    stamps: &mut Stamps<'_>,
    a: NodeIndex,
    b: NodeIndex,
    capacitance: f64,
    dt: f64,
    previous_solution: &[f64],
) {
    assert!(capacitance > 0.0, "capacitance must be positive");
    assert!(dt > 0.0, "time step must be positive");
    let geq = capacitance / dt;
    let v_prev = node_voltage(previous_solution, a) - node_voltage(previous_solution, b);
    stamps.conductance(a, b, geq);
    // The companion current source injects geq * v_prev from b to a, which
    // keeps the capacitor voltage continuous across the step.
    stamps.current(b, a, geq * v_prev);
}

/// DC stamp of a capacitor: nothing (an ideal capacitor is an open circuit
/// at DC). Present for symmetry and documentation purposes.
pub fn stamp_dc(_stamps: &mut Stamps<'_>, _a: NodeIndex, _b: NodeIndex, _capacitance: f64) {}

#[cfg(test)]
mod tests {
    use super::*;
    use se_numeric::Matrix;

    #[test]
    fn transient_companion_matches_hand_calculation() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamps::new(&mut m, &mut rhs);
        // 1 pF, 1 ns step, previous voltage across = 0.5 V.
        let prev = vec![0.5, 0.0];
        stamp_transient(&mut s, Some(0), Some(1), 1e-12, 1e-9, &prev);
        let geq = 1e-3;
        assert!((m[(0, 0)] - geq).abs() < 1e-18);
        assert!((m[(0, 1)] + geq).abs() < 1e-18);
        // Companion current geq*v_prev flows from node 1 to node 0.
        assert!((rhs[0] - geq * 0.5).abs() < 1e-18);
        assert!((rhs[1] + geq * 0.5).abs() < 1e-18);
    }

    #[test]
    fn dc_stamp_is_a_no_op() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp_dc(&mut s, Some(0), Some(1), 1e-12);
        assert_eq!(m.max_abs(), 0.0);
        assert_eq!(rhs, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "time step")]
    fn zero_time_step_panics() {
        let mut m = Matrix::zeros(1, 1);
        let mut rhs = vec![0.0; 1];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp_transient(&mut s, Some(0), None, 1e-12, 0.0, &[0.0]);
    }
}
