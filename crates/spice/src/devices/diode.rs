//! Shockley junction diode with exponent limiting.

use super::{node_voltage, NodeIndex, Stamps};

/// Thermal voltage at 300 K, used by the compact diode model.
const THERMAL_VOLTAGE: f64 = 0.02585;

/// Junction-voltage ceiling (in multiples of `n·Vt`) applied before
/// evaluating the exponential, the classic SPICE convergence aid.
const MAX_EXPONENT: f64 = 40.0;

/// Shockley diode model `I = Is·(exp(V/(n·Vt)) − 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current in ampere.
    pub saturation_current: f64,
    /// Ideality factor.
    pub ideality: f64,
}

impl DiodeModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the saturation current is not strictly positive or the
    /// ideality factor is not in `[1, 5]` (validated upstream by the netlist
    /// layer).
    #[must_use]
    pub fn new(saturation_current: f64, ideality: f64) -> Self {
        assert!(
            saturation_current > 0.0,
            "saturation current must be positive"
        );
        assert!(
            (1.0..=5.0).contains(&ideality),
            "ideality factor must lie in [1, 5]"
        );
        DiodeModel {
            saturation_current,
            ideality,
        }
    }

    /// Evaluates the diode current and small-signal conductance at junction
    /// voltage `v` (anode minus cathode), with exponent limiting.
    #[must_use]
    pub fn evaluate(&self, v: f64) -> (f64, f64) {
        let n_vt = self.ideality * THERMAL_VOLTAGE;
        let x = (v / n_vt).min(MAX_EXPONENT);
        let exp = x.exp();
        let current = self.saturation_current * (exp - 1.0);
        let conductance = (self.saturation_current * exp / n_vt).max(1e-15);
        (current, conductance)
    }

    /// Stamps the Newton-linearised diode between `anode` and `cathode`
    /// around the present `solution`.
    pub fn stamp(
        &self,
        stamps: &mut Stamps<'_>,
        anode: NodeIndex,
        cathode: NodeIndex,
        solution: &[f64],
    ) {
        let v = node_voltage(solution, anode) - node_voltage(solution, cathode);
        let (current, conductance) = self.evaluate(v);
        let i_eq = current - conductance * v;
        stamps.conductance(anode, cathode, conductance);
        stamps.current(anode, cathode, i_eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_numeric::Matrix;

    #[test]
    fn reverse_bias_current_saturates() {
        let d = DiodeModel::new(1e-14, 1.0);
        let (i, g) = d.evaluate(-1.0);
        assert!((i + 1e-14).abs() < 1e-20);
        assert!(g > 0.0);
    }

    #[test]
    fn forward_current_grows_exponentially() {
        let d = DiodeModel::new(1e-14, 1.0);
        let (i1, _) = d.evaluate(0.6);
        let (i2, _) = d.evaluate(0.66);
        // 60 mV per decade (ideality 1) → one decade.
        let ratio = i2 / i1;
        assert!((ratio - 10.0).abs() / 10.0 < 0.15, "ratio {ratio}");
    }

    #[test]
    fn exponent_limiting_prevents_overflow() {
        let d = DiodeModel::new(1e-14, 1.0);
        let (i, g) = d.evaluate(100.0);
        assert!(i.is_finite());
        assert!(g.is_finite());
    }

    #[test]
    fn conductance_is_derivative_of_current() {
        let d = DiodeModel::new(1e-14, 1.2);
        let v = 0.55;
        let h = 1e-7;
        let (i_plus, _) = d.evaluate(v + h);
        let (i_minus, _) = d.evaluate(v - h);
        let numeric = (i_plus - i_minus) / (2.0 * h);
        let (_, g) = d.evaluate(v);
        assert!((numeric - g).abs() / g < 1e-4);
    }

    #[test]
    fn stamp_produces_equivalent_linear_circuit() {
        let d = DiodeModel::new(1e-14, 1.0);
        let mut m = Matrix::zeros(1, 1);
        let mut rhs = vec![0.0; 1];
        let solution = vec![0.6];
        let mut s = Stamps::new(&mut m, &mut rhs);
        d.stamp(&mut s, Some(0), None, &solution);
        let (i, g) = d.evaluate(0.6);
        assert!((m[(0, 0)] - g).abs() < 1e-12 * g);
        assert!((rhs[0] + (i - g * 0.6)).abs() < 1e-12 * i.abs());
    }

    #[test]
    #[should_panic(expected = "ideality")]
    fn bad_ideality_panics() {
        let _ = DiodeModel::new(1e-14, 0.2);
    }
}
