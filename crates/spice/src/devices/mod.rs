//! Compact device models and their MNA stamps.
//!
//! Every device is expressed through [`Stamps`], a thin view over the MNA
//! matrix and right-hand side that knows about the ground node (represented
//! as `None`) so device code never has to special-case it.

pub mod capacitor;
pub mod diode;
pub mod mosfet;
pub mod resistor;
pub mod set_analytic;
pub mod sources;

use se_numeric::Matrix;

/// A node index in the reduced MNA system: `None` is ground, `Some(i)` is
/// the `i`-th non-ground node.
pub type NodeIndex = Option<usize>;

/// Mutable view over the MNA matrix and right-hand side used by device
/// stamps.
#[derive(Debug)]
pub struct Stamps<'a> {
    matrix: &'a mut Matrix,
    rhs: &'a mut [f64],
}

impl<'a> Stamps<'a> {
    /// Creates a stamp view over an MNA matrix and right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the right-hand side length does
    /// not match the matrix dimension.
    #[must_use]
    pub fn new(matrix: &'a mut Matrix, rhs: &'a mut [f64]) -> Self {
        assert!(matrix.is_square(), "MNA matrix must be square");
        assert_eq!(matrix.rows(), rhs.len(), "rhs length must match matrix");
        Stamps { matrix, rhs }
    }

    /// Adds a conductance `g` between two nodes (either may be ground).
    pub fn conductance(&mut self, a: NodeIndex, b: NodeIndex, g: f64) {
        if let Some(i) = a {
            self.matrix.add_at(i, i, g);
        }
        if let Some(j) = b {
            self.matrix.add_at(j, j, g);
        }
        if let (Some(i), Some(j)) = (a, b) {
            self.matrix.add_at(i, j, -g);
            self.matrix.add_at(j, i, -g);
        }
    }

    /// Adds a transconductance: a current into `out_plus` (and out of
    /// `out_minus`) proportional to the voltage `V(in_plus) − V(in_minus)`.
    pub fn transconductance(
        &mut self,
        out_plus: NodeIndex,
        out_minus: NodeIndex,
        in_plus: NodeIndex,
        in_minus: NodeIndex,
        gm: f64,
    ) {
        for (out, sign_out) in [(out_plus, 1.0), (out_minus, -1.0)] {
            let Some(row) = out else { continue };
            for (inp, sign_in) in [(in_plus, 1.0), (in_minus, -1.0)] {
                let Some(col) = inp else { continue };
                self.matrix.add_at(row, col, sign_out * sign_in * gm);
            }
        }
    }

    /// Adds a constant current `i` flowing from node `from`, through the
    /// device, into node `to`.
    pub fn current(&mut self, from: NodeIndex, to: NodeIndex, i: f64) {
        if let Some(a) = from {
            self.rhs[a] -= i;
        }
        if let Some(b) = to {
            self.rhs[b] += i;
        }
    }

    /// Adds an entry in an arbitrary matrix position (used by voltage-source
    /// branch equations).
    pub fn matrix_entry(&mut self, row: usize, col: usize, value: f64) {
        self.matrix.add_at(row, col, value);
    }

    /// Adds to an arbitrary right-hand-side position.
    pub fn rhs_entry(&mut self, row: usize, value: f64) {
        self.rhs[row] += value;
    }
}

/// Reads the voltage of a node from the solution vector (`0.0` for ground).
#[must_use]
pub fn node_voltage(solution: &[f64], node: NodeIndex) -> f64 {
    match node {
        Some(i) => solution[i],
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_stamp_is_symmetric_and_conservative() {
        let mut m = Matrix::zeros(3, 3);
        let mut rhs = vec![0.0; 3];
        let mut stamps = Stamps::new(&mut m, &mut rhs);
        stamps.conductance(Some(0), Some(1), 2.0);
        stamps.conductance(Some(1), None, 0.5);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], -2.0);
        assert_eq!(m[(1, 0)], -2.0);
        // Ground connection only touches the diagonal.
        assert_eq!(m[(2, 2)], 0.0);
    }

    #[test]
    fn current_stamp_moves_charge_between_nodes() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut stamps = Stamps::new(&mut m, &mut rhs);
        stamps.current(Some(0), Some(1), 1e-3);
        stamps.current(None, Some(1), 2e-3);
        assert_eq!(rhs[0], -1e-3);
        assert_eq!(rhs[1], 3e-3);
    }

    #[test]
    fn transconductance_stamp_signs() {
        let mut m = Matrix::zeros(4, 4);
        let mut rhs = vec![0.0; 4];
        let mut stamps = Stamps::new(&mut m, &mut rhs);
        stamps.transconductance(Some(0), Some(1), Some(2), Some(3), 1.5);
        assert_eq!(m[(0, 2)], 1.5);
        assert_eq!(m[(0, 3)], -1.5);
        assert_eq!(m[(1, 2)], -1.5);
        assert_eq!(m[(1, 3)], 1.5);
    }

    #[test]
    fn node_voltage_of_ground_is_zero() {
        let x = vec![1.0, 2.0];
        assert_eq!(node_voltage(&x, None), 0.0);
        assert_eq!(node_voltage(&x, Some(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_rhs_length_panics() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 3];
        let _ = Stamps::new(&mut m, &mut rhs);
    }
}
