//! Level-1 (Shichman–Hodges) MOSFET model.
//!
//! The hybrid SET/CMOS circuits of the paper (the Inokawa multiple-valued
//! quantizer and the Uchida random-number generator) use the MOSFET purely
//! as a gain / current-source element in series with an SET, so the square-
//! law level-1 model with channel-length modulation is an adequate
//! representation of the 0.18 µm-class devices they report.

use super::{node_voltage, NodeIndex, Stamps};
use se_netlist::{MosfetParams, MosfetType};

/// Level-1 MOSFET evaluated quantities at one bias point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosfetOperatingPoint {
    /// Drain current (ampere), flowing into the drain terminal.
    pub id: f64,
    /// Transconductance ∂Id/∂Vgs (siemens).
    pub gm: f64,
    /// Output conductance ∂Id/∂Vds (siemens).
    pub gds: f64,
}

/// Level-1 MOSFET compact model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    params: MosfetParams,
}

impl MosfetModel {
    /// Wraps the netlist parameters in an evaluable model.
    #[must_use]
    pub fn new(params: MosfetParams) -> Self {
        MosfetModel { params }
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Evaluates the drain current and small-signal conductances at the
    /// given terminal voltages (volt). `vgs`/`vds` are drain and gate
    /// referenced to the source as usual.
    #[must_use]
    pub fn evaluate(&self, vgs: f64, vds: f64) -> MosfetOperatingPoint {
        // Map PMOS onto the NMOS equations through sign reversal.
        let sign = match self.params.polarity {
            MosfetType::Nmos => 1.0,
            MosfetType::Pmos => -1.0,
        };
        let vgs_eff = sign * vgs;
        let vds_eff = sign * vds;
        let vth = sign * self.params.vth; // positive number for both types

        // The level-1 model is symmetric: for negative Vds, swap source and
        // drain.
        let (vgs_use, vds_use, swapped) = if vds_eff >= 0.0 {
            (vgs_eff, vds_eff, false)
        } else {
            (vgs_eff - vds_eff, -vds_eff, true)
        };
        let kp = self.params.kp;
        let lambda = self.params.lambda;
        let vov = vgs_use - vth;

        let (id, gm, gds) = if vov <= 0.0 {
            // Cut-off: a tiny leakage conductance keeps Newton well posed.
            (0.0, 0.0, 1e-12)
        } else if vds_use < vov {
            // Triode region.
            let id = kp * (vov * vds_use - 0.5 * vds_use * vds_use) * (1.0 + lambda * vds_use);
            let gm = kp * vds_use * (1.0 + lambda * vds_use);
            let gds = kp * (vov - vds_use) * (1.0 + lambda * vds_use)
                + kp * (vov * vds_use - 0.5 * vds_use * vds_use) * lambda;
            (id, gm, gds.max(1e-12))
        } else {
            // Saturation.
            let id = 0.5 * kp * vov * vov * (1.0 + lambda * vds_use);
            let gm = kp * vov * (1.0 + lambda * vds_use);
            let gds = 0.5 * kp * vov * vov * lambda;
            (id, gm, gds.max(1e-12))
        };

        if swapped {
            // Current reverses; conductances transform accordingly. In the
            // swapped frame Id' = -Id(vgs - vds, -vds):
            //   ∂/∂vgs  → -gm'
            //   ∂/∂vds  → gm' + gds'
            MosfetOperatingPoint {
                id: -sign * id,
                gm: -gm,
                gds: (gm + gds).max(1e-12),
            }
        } else {
            MosfetOperatingPoint {
                id: sign * id,
                gm,
                gds,
            }
        }
    }

    /// Stamps the Newton-linearised MOSFET with terminals
    /// `(drain, gate, source)` around the present `solution`.
    pub fn stamp(
        &self,
        stamps: &mut Stamps<'_>,
        drain: NodeIndex,
        gate: NodeIndex,
        source: NodeIndex,
        solution: &[f64],
    ) {
        let vd = node_voltage(solution, drain);
        let vg = node_voltage(solution, gate);
        let vs = node_voltage(solution, source);
        let op = self.evaluate(vg - vs, vd - vs);
        // Companion: Id ≈ op.id + gm·(Δvgs) + gds·(Δvds)
        let i_eq = op.id - op.gm * (vg - vs) - op.gds * (vd - vs);
        stamps.conductance(drain, source, op.gds);
        stamps.transconductance(drain, source, gate, source, op.gm);
        stamps.current(drain, source, i_eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::MosfetParams;

    fn nmos() -> MosfetModel {
        MosfetModel::new(MosfetParams::nmos_180nm())
    }

    fn pmos() -> MosfetModel {
        MosfetModel::new(MosfetParams::pmos_180nm())
    }

    #[test]
    fn cutoff_has_no_current() {
        let op = nmos().evaluate(0.2, 1.0);
        assert_eq!(op.id, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn saturation_current_is_square_law() {
        let m = nmos();
        let vth = m.params().vth;
        let i1 = m.evaluate(vth + 0.2, 1.5).id;
        let i2 = m.evaluate(vth + 0.4, 1.5).id;
        // Doubling the overdrive quadruples the current (up to λ terms).
        let ratio = i2 / i1;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn triode_region_behaves_like_a_resistor_at_small_vds() {
        let m = nmos();
        let vgs = 1.2;
        let op = m.evaluate(vgs, 1e-3);
        // Id ≈ kp·(vov)·vds.
        let expected = m.params().kp * (vgs - m.params().vth) * 1e-3;
        assert!((op.id - expected).abs() / expected < 0.01);
    }

    #[test]
    fn conductances_match_numerical_derivatives() {
        let m = nmos();
        for &(vgs, vds) in &[(0.8, 0.05), (0.8, 1.2), (1.4, 0.3), (1.4, 2.0)] {
            let op = m.evaluate(vgs, vds);
            let h = 1e-6;
            let gm_num = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
            let gds_num = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
            assert!(
                (op.gm - gm_num).abs() < 1e-4 * gm_num.abs().max(1e-9),
                "gm mismatch at ({vgs}, {vds}): {} vs {}",
                op.gm,
                gm_num
            );
            assert!(
                (op.gds - gds_num).abs() < 1e-4 * gds_num.abs().max(1e-9),
                "gds mismatch at ({vgs}, {vds}): {} vs {}",
                op.gds,
                gds_num
            );
        }
    }

    #[test]
    fn reverse_vds_reverses_current() {
        let m = nmos();
        let forward = m.evaluate(1.2, 0.3).id;
        let reverse = m.evaluate(1.2 - 0.3, -0.3).id;
        // Swapping drain and source with the same terminal-to-terminal
        // voltages gives the opposite current.
        assert!((forward + reverse).abs() < 1e-9 * forward.abs());
    }

    #[test]
    fn pmos_conducts_for_negative_gate_drive() {
        let m = pmos();
        let off = m.evaluate(0.0, -1.0).id;
        let on = m.evaluate(-1.2, -1.0).id;
        assert_eq!(off, 0.0);
        assert!(on < 0.0, "PMOS drain current should be negative, got {on}");
        assert!(on.abs() > 1e-5);
    }

    #[test]
    fn pmos_conductances_match_numerical_derivatives() {
        let m = pmos();
        let (vgs, vds) = (-1.2, -0.8);
        let op = m.evaluate(vgs, vds);
        let h = 1e-6;
        let gm_num = (m.evaluate(vgs + h, vds).id - m.evaluate(vgs - h, vds).id) / (2.0 * h);
        let gds_num = (m.evaluate(vgs, vds + h).id - m.evaluate(vgs, vds - h).id) / (2.0 * h);
        assert!((op.gm - gm_num).abs() < 1e-4 * gm_num.abs().max(1e-9));
        assert!((op.gds - gds_num).abs() < 1e-4 * gds_num.abs().max(1e-9));
    }
}
