//! Linear resistor stamp.

use super::{NodeIndex, Stamps};

/// Stamps a resistor of `resistance` ohm between nodes `a` and `b`.
///
/// # Panics
///
/// Panics if `resistance` is not strictly positive (validated upstream by
/// the netlist layer; the assertion guards against direct misuse).
pub fn stamp(stamps: &mut Stamps<'_>, a: NodeIndex, b: NodeIndex, resistance: f64) {
    assert!(resistance > 0.0, "resistance must be positive");
    stamps.conductance(a, b, 1.0 / resistance);
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_numeric::Matrix;

    #[test]
    fn stamp_adds_reciprocal_conductance() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp(&mut s, Some(0), Some(1), 500.0);
        assert!((m[(0, 0)] - 2e-3).abs() < 1e-15);
        assert!((m[(0, 1)] + 2e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_panics() {
        let mut m = Matrix::zeros(1, 1);
        let mut rhs = vec![0.0; 1];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp(&mut s, Some(0), None, 0.0);
    }
}
