//! Analytic (compact) single-electron-transistor model for SPICE-style
//! simulation.
//!
//! This is the toolkit's counterpart of the analytic SET models the paper
//! cites for SPICE integration (Wang–Porod; the MIB model used by
//! Mahapatra et al.). Like those models it treats the SET in the
//! *two-charge-state, sequential-tunnelling* approximation: at any bias only
//! the two island occupations adjacent to the gate-induced charge matter,
//! the four orthodox rates between them are evaluated in closed form, and
//! the stationary current follows analytically. The model therefore
//! reproduces the periodic Id–Vg characteristic (period `e/C_g`), its phase
//! shift under background charge and the blockade diamonds at low bias, but
//! — exactly like the published compact models — it misses multi-state
//! effects at large bias (the Coulomb staircase), interacting SETs and
//! cotunneling. Quantifying that gap against the Monte-Carlo engine is
//! experiment E10.

use super::{node_voltage, NodeIndex, Stamps};
use se_netlist::SetParams;
use se_units::constants::{BOLTZMANN, E};

/// Analytic two-state SET compact model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetAnalyticModel {
    params: SetParams,
    temperature: f64,
}

impl SetAnalyticModel {
    /// Creates a model at the given temperature (kelvin).
    ///
    /// # Panics
    ///
    /// Panics if the temperature is negative or not finite, or if any of the
    /// device parameters are non-positive (validated upstream by the netlist
    /// layer).
    #[must_use]
    pub fn new(params: SetParams, temperature: f64) -> Self {
        assert!(
            temperature >= 0.0 && temperature.is_finite(),
            "temperature must be non-negative and finite"
        );
        assert!(
            params.c_gate > 0.0 && params.c_source > 0.0 && params.c_drain > 0.0,
            "SET capacitances must be positive"
        );
        assert!(
            params.r_source > 0.0 && params.r_drain > 0.0,
            "SET tunnel resistances must be positive"
        );
        SetAnalyticModel {
            params,
            temperature,
        }
    }

    /// The device parameters.
    #[must_use]
    pub fn params(&self) -> &SetParams {
        &self.params
    }

    /// Simulation temperature in kelvin.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Gate-voltage period of the Coulomb oscillation, `e/C_g`.
    #[must_use]
    pub fn gate_period(&self) -> f64 {
        E / self.params.c_gate
    }

    /// Orthodox rate with the same limits as the physics layer, written out
    /// locally because compact models are self-contained by construction.
    fn rate(&self, delta_f: f64, resistance: f64) -> f64 {
        let prefactor = 1.0 / (E * E * resistance);
        if self.temperature == 0.0 {
            return if delta_f < 0.0 {
                -delta_f * prefactor
            } else {
                0.0
            };
        }
        let kt = BOLTZMANN * self.temperature;
        let x = delta_f / kt;
        if x.abs() < 1e-9 {
            kt * prefactor
        } else if x > 500.0 {
            0.0
        } else if x < -500.0 {
            -delta_f * prefactor
        } else {
            (-delta_f) * prefactor / (1.0 - x.exp())
        }
    }

    /// Drain current (ampere) for the given gate-source and drain-source
    /// voltages; the source terminal is the reference. Positive current
    /// flows from drain to source for positive `vds`.
    #[must_use]
    pub fn drain_current(&self, vgs: f64, vds: f64) -> f64 {
        let p = &self.params;
        let c_sigma = p.c_gate + p.c_source + p.c_drain;
        // Continuous gate-induced charge (in units of e), including the
        // static background charge.
        let q_cont = (p.c_gate * vgs + p.c_drain * vds) / E + p.background_charge;
        // The two relevant occupations bracket the induced charge.
        let n0 = q_cont.floor();

        let phi = |n: f64| {
            (-E * n + E * p.background_charge + p.c_drain * vds + p.c_gate * vgs) / c_sigma
        };
        // Electron enters the island from a lead at `v_lead` while the
        // island holds `n` electrons.
        let df_in = |n: f64, v_lead: f64| E * (v_lead - phi(n)) + E * E / (2.0 * c_sigma);

        // Rates between the two states n0 and n0+1.
        let gamma_d_in = self.rate(df_in(n0, vds), p.r_drain);
        let gamma_s_in = self.rate(df_in(n0, 0.0), p.r_source);
        let gamma_d_out = self.rate(-df_in(n0, vds), p.r_drain);
        let gamma_s_out = self.rate(-df_in(n0, 0.0), p.r_source);

        let total = gamma_d_in + gamma_s_in + gamma_d_out + gamma_s_out;
        if total <= 0.0 {
            return 0.0;
        }
        // Stationary two-state occupation.
        let p1 = (gamma_d_in + gamma_s_in) / total;
        let p0 = 1.0 - p1;
        // Conventional drain current: electrons arriving at the drain minus
        // electrons leaving it.
        E * (p1 * gamma_d_out - p0 * gamma_d_in)
    }

    /// Small-signal transconductance and output conductance by central
    /// finite differences: `(gm, gds)`.
    #[must_use]
    pub fn conductances(&self, vgs: f64, vds: f64) -> (f64, f64) {
        let dv = 1e-6;
        let gm =
            (self.drain_current(vgs + dv, vds) - self.drain_current(vgs - dv, vds)) / (2.0 * dv);
        let gds =
            (self.drain_current(vgs, vds + dv) - self.drain_current(vgs, vds - dv)) / (2.0 * dv);
        (gm, gds)
    }

    /// Stamps the Newton-linearised SET with terminals
    /// `(drain, gate, source)` around the present `solution`.
    pub fn stamp(
        &self,
        stamps: &mut Stamps<'_>,
        drain: NodeIndex,
        gate: NodeIndex,
        source: NodeIndex,
        solution: &[f64],
    ) {
        let vd = node_voltage(solution, drain);
        let vg = node_voltage(solution, gate);
        let vs = node_voltage(solution, source);
        let vgs = vg - vs;
        let vds = vd - vs;
        let id = self.drain_current(vgs, vds);
        let (gm, gds) = self.conductances(vgs, vds);
        // Keep the linearised model passive enough for Newton stability.
        let gds = gds.max(1e-12);
        let i_eq = id - gm * vgs - gds * vds;
        stamps.conductance(drain, source, gds);
        stamps.transconductance(drain, source, gate, source, gm);
        stamps.current(drain, source, i_eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(q0: f64, temperature: f64) -> SetAnalyticModel {
        SetAnalyticModel::new(
            SetParams::symmetric(1e-18, 0.5e-18, 100e3).with_background_charge(q0),
            temperature,
        )
    }

    #[test]
    fn blockade_and_peak() {
        let m = model(0.0, 1.0);
        let blocked = m.drain_current(0.0, 1e-3);
        let open = m.drain_current(m.gate_period() / 2.0, 1e-3);
        assert!(open.abs() > 1e3 * blocked.abs());
        assert!(open > 0.0);
    }

    #[test]
    fn current_reverses_with_bias() {
        let m = model(0.0, 1.0);
        let vg = m.gate_period() / 2.0;
        let plus = m.drain_current(vg, 1e-3);
        let minus = m.drain_current(vg, -1e-3);
        assert!(plus > 0.0);
        assert!(minus < 0.0);
        assert!((plus + minus).abs() < 0.05 * plus);
    }

    #[test]
    fn characteristic_is_periodic_in_gate_voltage() {
        let m = model(0.0, 2.0);
        let period = m.gate_period();
        for frac in [0.2, 0.5, 0.8] {
            let a = m.drain_current(frac * period, 5e-4);
            let b = m.drain_current((frac + 1.0) * period, 5e-4);
            assert!(
                (a - b).abs() < 1e-3 * a.abs().max(1e-15),
                "current must repeat every e/Cg: {a} vs {b}"
            );
        }
    }

    #[test]
    fn background_charge_is_a_phase_shift() {
        let q0 = 0.37;
        let with_q0 = model(q0, 1.0);
        let reference = model(0.0, 1.0);
        let period = reference.gate_period();
        for frac in [0.1, 0.4, 0.7] {
            let a = with_q0.drain_current(frac * period, 1e-3);
            let b = reference.drain_current((frac + q0) * period, 1e-3);
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1e-15),
                "background charge must only shift the phase: {a} vs {b}"
            );
        }
    }

    #[test]
    fn agrees_with_master_equation_reference_at_low_bias() {
        // The compact model's raison d'être: match the detailed model where
        // two charge states dominate.
        let m = model(0.0, 1.0);
        let set =
            se_orthodox::set::SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        let period = m.gate_period();
        for frac in [0.25, 0.5, 0.75] {
            let vg = frac * period;
            let compact = m.drain_current(vg, 1e-3);
            let exact = set.current(1e-3, vg, 0.0, 1.0).unwrap();
            let scale = exact.abs().max(1e-15);
            assert!(
                (compact - exact).abs() < 0.05 * scale,
                "compact {compact} vs exact {exact} at gate fraction {frac}"
            );
        }
    }

    #[test]
    fn deviates_from_detailed_model_at_high_bias() {
        // At several charging energies of bias more than two charge states
        // carry current: the compact model must *under*-estimate the exact
        // current. This is the documented, intentional limitation.
        let m = model(0.0, 1.0);
        let set =
            se_orthodox::set::SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
        let vds = 0.4; // e/CΣ = 80 mV, so this is 5 blockade widths.
        let compact = m.drain_current(0.0, vds);
        let exact = set.current(vds, 0.0, 0.0, 1.0).unwrap();
        assert!(
            compact < 0.8 * exact,
            "compact model should fall below the exact staircase current: {compact} vs {exact}"
        );
    }

    #[test]
    fn conductances_match_finite_differences_of_current() {
        let m = model(0.1, 4.2);
        let (gm, gds) = m.conductances(0.05, 2e-3);
        assert!(gm.is_finite());
        assert!(gds.is_finite());
        // Conductance at a rising flank of the oscillation is positive.
        let (gm_peak, _) = m.conductances(0.25 * m.gate_period(), 1e-3);
        assert!(gm_peak > 0.0);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn negative_temperature_panics() {
        let _ = model(0.0, -1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No current flows at zero drain bias, for any gate voltage,
        /// background charge and temperature.
        #[test]
        fn prop_zero_bias_zero_current(
            vg_frac in -2.0_f64..2.0,
            q0 in -1.0_f64..1.0,
            temp in 0.0_f64..300.0,
        ) {
            let m = model(q0, temp);
            let i = m.drain_current(vg_frac * m.gate_period(), 0.0);
            let scale = m.drain_current(m.gate_period() / 2.0, 1e-3).abs().max(1e-12);
            prop_assert!(i.abs() < 1e-6 * scale);
        }

        /// The drain current is an increasing function of the drain bias at
        /// the conductance peak.
        #[test]
        fn prop_current_monotone_in_bias_at_peak(vds in 1e-5_f64..5e-3) {
            let m = model(0.0, 1.0);
            let vg = m.gate_period() / 2.0;
            let i1 = m.drain_current(vg, vds);
            let i2 = m.drain_current(vg, vds * 1.1);
            prop_assert!(i2 >= i1 * (1.0 - 1e-9));
        }
    }
}
