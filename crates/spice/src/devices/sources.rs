//! Independent DC voltage and current source stamps.

use super::{NodeIndex, Stamps};

/// Stamps an ideal voltage source between `plus` and `minus` using the MNA
/// branch-current formulation. `branch_row` is the extra unknown's row (the
/// source current, flowing from `plus` through the source to `minus`).
pub fn stamp_voltage_source(
    stamps: &mut Stamps<'_>,
    plus: NodeIndex,
    minus: NodeIndex,
    branch_row: usize,
    voltage: f64,
) {
    if let Some(p) = plus {
        stamps.matrix_entry(p, branch_row, 1.0);
        stamps.matrix_entry(branch_row, p, 1.0);
    }
    if let Some(m) = minus {
        stamps.matrix_entry(m, branch_row, -1.0);
        stamps.matrix_entry(branch_row, m, -1.0);
    }
    stamps.rhs_entry(branch_row, voltage);
}

/// Stamps an ideal DC current source driving `current` amperes from node
/// `from`, through the source, into node `to`.
pub fn stamp_current_source(stamps: &mut Stamps<'_>, from: NodeIndex, to: NodeIndex, current: f64) {
    stamps.current(from, to, current);
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_numeric::Matrix;

    #[test]
    fn voltage_source_branch_equations() {
        // 2 nodes + 1 branch unknown.
        let mut m = Matrix::zeros(3, 3);
        let mut rhs = vec![0.0; 3];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp_voltage_source(&mut s, Some(0), Some(1), 2, 1.5);
        assert_eq!(m[(0, 2)], 1.0);
        assert_eq!(m[(2, 0)], 1.0);
        assert_eq!(m[(1, 2)], -1.0);
        assert_eq!(m[(2, 1)], -1.0);
        assert_eq!(rhs[2], 1.5);
    }

    #[test]
    fn grounded_voltage_source_skips_ground_entries() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp_voltage_source(&mut s, Some(0), None, 1, 3.3);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(rhs[1], 3.3);
    }

    #[test]
    fn current_source_injects_into_rhs() {
        let mut m = Matrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamps::new(&mut m, &mut rhs);
        stamp_current_source(&mut s, Some(0), Some(1), 2e-6);
        assert_eq!(rhs[0], -2e-6);
        assert_eq!(rhs[1], 2e-6);
    }
}
