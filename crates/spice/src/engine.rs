//! [`StationaryEngine`] adapter for the SPICE DC engine.
//!
//! Controls are the circuit's DC voltage sources (swept by name, as in a
//! `.dc` statement); observables are the branch currents through voltage
//! sources. Every stationary solve is an independent cold-start Newton
//! solution (with the solver's `gmin` stepping as the fallback), so bias
//! points can run on any thread in any order with identical results.

use crate::circuit::Circuit;
use crate::dc::{solve_dc_with_overrides, NewtonOptions};
use crate::error::SpiceError;
use se_engine::{ControlId, ObservableId, StationaryEngine};
use std::collections::HashMap;

/// The SPICE DC engine as a [`StationaryEngine`]: a circuit plus Newton
/// options.
#[derive(Debug, Clone)]
pub struct SpiceDcEngine {
    circuit: Circuit,
    options: NewtonOptions,
    /// Voltage-source names (lower-cased), indexed by handle value.
    sources: Vec<String>,
}

impl SpiceDcEngine {
    /// Wraps a circuit with the given Newton options.
    #[must_use]
    pub fn new(circuit: Circuit, options: NewtonOptions) -> Self {
        let sources = circuit
            .netlist()
            .elements()
            .iter()
            .filter(|e| e.is_voltage_source())
            .map(|e| e.name().to_ascii_lowercase())
            .collect();
        SpiceDcEngine {
            circuit,
            options,
            sources,
        }
    }

    /// The wrapped circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The circuit's voltage-source names (lower-cased), indexed by handle
    /// value; shared with the transient engine so both faces resolve names
    /// identically.
    pub(crate) fn source_names(&self) -> &[String] {
        &self.sources
    }

    /// The Newton options the engine was created with.
    pub(crate) fn newton_options(&self) -> &NewtonOptions {
        &self.options
    }

    pub(crate) fn resolve_source(&self, name: &str) -> Result<usize, SpiceError> {
        let lowered = name.to_ascii_lowercase();
        self.sources
            .iter()
            .position(|s| *s == lowered)
            .ok_or_else(|| SpiceError::InvalidArgument(format!("no voltage source named `{name}`")))
    }
}

impl StationaryEngine for SpiceDcEngine {
    type Error = SpiceError;

    fn engine_name(&self) -> &'static str {
        "spice-dc"
    }

    fn resolve_control(&self, name: &str) -> Result<ControlId, SpiceError> {
        self.resolve_source(name).map(ControlId)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SpiceError> {
        self.resolve_source(name).map(ObservableId)
    }

    fn stationary_currents(
        &self,
        controls: &[(ControlId, f64)],
        observables: &[ObservableId],
        _seed: u64,
    ) -> Result<Vec<f64>, SpiceError> {
        let mut overrides = HashMap::new();
        for &(ControlId(source), value) in controls {
            let name = self.sources.get(source).ok_or_else(|| {
                SpiceError::InvalidArgument(format!("unknown control handle {source}"))
            })?;
            overrides.insert(name.clone(), value);
        }
        let op = solve_dc_with_overrides(&self.circuit, &self.options, &overrides, None)?;
        observables
            .iter()
            .map(|&ObservableId(source)| {
                let name = self.sources.get(source).ok_or_else(|| {
                    SpiceError::InvalidArgument(format!("unknown observable handle {source}"))
                })?;
                op.source_current(name).ok_or_else(|| {
                    SpiceError::InvalidArgument(format!(
                        "no branch current recorded for source `{name}`"
                    ))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_engine::SweepRunner;
    use se_netlist::parse_deck;

    fn divider_engine() -> SpiceDcEngine {
        let netlist = parse_deck("divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        SpiceDcEngine::new(Circuit::new(&netlist).unwrap(), NewtonOptions::default())
    }

    #[test]
    fn source_names_resolve_case_insensitively() {
        let engine = divider_engine();
        assert!(engine.resolve_control("V1").is_ok());
        assert!(engine.resolve_control("v1").is_ok());
        assert!(engine.resolve_control("VX").is_err());
        assert!(engine.resolve_observable("V1").is_ok());
    }

    #[test]
    fn divider_sweep_through_the_runner_is_linear() {
        let engine = divider_engine();
        let values = se_engine::linspace(0.0, 2.0, 5).unwrap();
        let v1 = SweepRunner::new()
            .run(&engine, "V1", &values, "V1")
            .unwrap();
        // The source current of V1 is -V/(R1+R2).
        for (point, &v) in v1.iter().zip(&values) {
            assert!(
                (point.current + v / 2e3).abs() < 1e-9,
                "at {v}: {}",
                point.current
            );
        }
    }
}
