//! Error type for the SPICE engine.

use se_netlist::NetlistError;
use se_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors produced while building circuits or running analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The netlist was structurally invalid.
    Netlist(NetlistError),
    /// The Newton–Raphson iteration failed to converge.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Final residual norm in ampere.
        residual: f64,
    },
    /// The MNA matrix was singular even after `gmin` regularisation.
    SingularSystem(String),
    /// A numerical routine failed.
    Numeric(NumericError),
    /// Invalid analysis arguments (unknown node/source, bad time step, …).
    InvalidArgument(String),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Netlist(e) => write!(f, "netlist error: {e}"),
            SpiceError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            SpiceError::SingularSystem(msg) => write!(f, "singular MNA system: {msg}"),
            SpiceError::Numeric(e) => write!(f, "numerical error: {e}"),
            SpiceError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Netlist(e) => Some(e),
            SpiceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SpiceError {
    fn from(e: NetlistError) -> Self {
        SpiceError::Netlist(e)
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        SpiceError::Numeric(e)
    }
}

impl From<se_engine::GridError> for SpiceError {
    fn from(e: se_engine::GridError) -> Self {
        SpiceError::InvalidArgument(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        let e = SpiceError::NoConvergence {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100 iterations"));
        let e = SpiceError::SingularSystem("floating node".into());
        assert!(e.to_string().contains("floating node"));
        let e = SpiceError::InvalidArgument("bad step".into());
        assert!(e.to_string().contains("bad step"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: SpiceError = NetlistError::Empty.into();
        assert!(Error::source(&e).is_some());
        let e: SpiceError = NumericError::SingularMatrix { pivot: 2 }.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
