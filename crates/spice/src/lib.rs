//! SPICE-class circuit simulator with single-electron-transistor compact
//! models.
//!
//! The paper's Section 4 describes the first of the two simulator families
//! used for single-electron circuit analysis: "an extension of SPICE with
//! special SET models … \[which\] have the advantage to simulate large
//! circuits in a well known and familiar tool environment, but are not yet
//! able to deal with interacting SETs or … higher-order tunnelling effects".
//! This crate is that family member, built from scratch:
//!
//! * modified nodal analysis with Newton–Raphson DC solution and `gmin`
//!   stepping ([`dc`]);
//! * DC sweeps ([`sweep`]) and backward-Euler transient analysis with
//!   arbitrary source stimuli ([`mod@transient`]);
//! * compact device models ([`devices`]): resistor, capacitor, DC sources,
//!   Shockley diode, level-1 MOSFET, and an analytic periodic SET model in
//!   the spirit of the Wang–Porod / MIB SPICE models cited by the paper.
//!
//! Tunnel junctions appearing in a netlist are treated as ohmic resistors in
//! parallel with their capacitance — precisely the approximation that makes
//! SPICE-level simulation fast and *in*accurate for interacting SETs, which
//! is the trade-off experiment E10 quantifies against the Monte-Carlo
//! engine.
//!
//! # Example
//!
//! ```
//! use se_spice::prelude::*;
//!
//! # fn main() -> Result<(), se_spice::SpiceError> {
//! let deck = "resistive divider\nV1 in 0 1.0\nR1 in out 1k\nR2 out 0 1k\n";
//! let netlist = se_netlist::parse_deck(deck).map_err(SpiceError::from)?;
//! let circuit = Circuit::new(&netlist)?;
//! let op = circuit.dc_operating_point()?;
//! let v_out = op.voltage("out").expect("node exists");
//! assert!((v_out - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(a > b)` is the idiom this crate uses to reject NaN alongside ordinary
// range violations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod circuit;
pub mod dc;
pub mod devices;
pub mod engine;
pub mod error;
pub mod sweep;
pub mod transient;

pub use circuit::{Circuit, OperatingPoint};
pub use dc::NewtonOptions;
pub use engine::SpiceDcEngine;
pub use error::SpiceError;
pub use sweep::{dc_sweep, SweepResult};
pub use transient::{transient, SpiceTransientEngine, Stimulus, TransientOptions, TransientResult};

/// Commonly used types for driving the SPICE engine.
pub mod prelude {
    pub use crate::circuit::{Circuit, OperatingPoint};
    pub use crate::dc::NewtonOptions;
    pub use crate::devices::set_analytic::SetAnalyticModel;
    pub use crate::engine::SpiceDcEngine;
    pub use crate::error::SpiceError;
    pub use crate::sweep::{dc_sweep, SweepResult};
    pub use crate::transient::{
        transient, SpiceTransientEngine, Stimulus, TransientOptions, TransientResult,
    };
}
