//! DC sweeps, built on the shared parallel [`se_engine::SweepRunner`].

use crate::circuit::{Circuit, OperatingPoint};
use crate::dc::{solve_dc_with_overrides, NewtonOptions};
use crate::error::SpiceError;
use se_engine::SweepRunner;
use std::collections::HashMap;

/// Result of a DC sweep: the swept values and the operating point at each.
#[derive(Debug, Clone)]
pub struct SweepResult {
    source: String,
    values: Vec<f64>,
    points: Vec<OperatingPoint>,
}

impl SweepResult {
    /// Name of the swept source.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The swept source values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The operating points, one per swept value.
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Convenience: the voltage of `node` at every sweep point.
    #[must_use]
    pub fn node_voltages(&self, node: &str) -> Vec<f64> {
        self.points
            .iter()
            .map(|op| op.voltage(node).unwrap_or(f64::NAN))
            .collect()
    }

    /// Convenience: the current through voltage source `source` at every
    /// sweep point.
    #[must_use]
    pub fn source_currents(&self, source: &str) -> Vec<f64> {
        self.points
            .iter()
            .map(|op| op.source_current(source).unwrap_or(f64::NAN))
            .collect()
    }

    /// Number of sweep points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the sweep produced no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Sweeps the DC value of the named voltage source over `values`, solving
/// the operating point at each value.
///
/// The first point is solved cold (the solver's `gmin` stepping handles
/// hard starting points); its solution then seeds the Newton iteration of
/// *every* remaining point, which are fanned out in parallel across cores
/// by the shared [`SweepRunner`]. Because each point's initial guess
/// depends only on the first point — never on its neighbour — results are
/// independent of thread scheduling. Note this differs from a classic
/// serial `.dc` continuation: on a multi-valued characteristic
/// (hysteretic circuits) the sweep anchors to the branch of the first
/// point instead of tracking branches point-to-point.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidArgument`] if the source does not exist or
/// no values are given, and propagates solver errors.
pub fn dc_sweep(
    circuit: &Circuit,
    source: &str,
    values: &[f64],
    options: &NewtonOptions,
) -> Result<SweepResult, SpiceError> {
    if circuit.source_row(source).is_none() {
        return Err(SpiceError::InvalidArgument(format!(
            "no voltage source named `{source}`"
        )));
    }
    if values.is_empty() {
        return Err(SpiceError::InvalidArgument(
            "a DC sweep needs at least one value".into(),
        ));
    }
    let lowered = source.to_ascii_lowercase();
    let solve_at = |value: f64, initial: Option<Vec<f64>>| {
        let mut overrides = HashMap::new();
        overrides.insert(lowered.clone(), value);
        solve_dc_with_overrides(circuit, options, &overrides, initial)
    };
    let anchor = solve_at(values[0], None)?;
    let warm_start = anchor.solution().to_vec();
    let mut points = SweepRunner::new().map_points(values.len() - 1, |i, _seed| {
        solve_at(values[i + 1], Some(warm_start.clone()))
    })?;
    points.insert(0, anchor);
    Ok(SweepResult {
        source: source.to_string(),
        values: values.to_vec(),
        points,
    })
}

/// Generates `points` evenly spaced values covering `[start, stop]`.
/// Descending ranges (`start > stop`) are supported for reverse sweeps.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidArgument`] if `points < 2` or the range is
/// degenerate.
pub fn linspace(start: f64, stop: f64, points: usize) -> Result<Vec<f64>, SpiceError> {
    se_engine::linspace(start, stop, points).map_err(|e| SpiceError::InvalidArgument(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;
    use se_units::constants::E;

    #[test]
    fn sweep_validates_inputs() {
        let netlist = parse_deck("divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let options = NewtonOptions::default();
        assert!(dc_sweep(&circuit, "VX", &[0.0, 1.0], &options).is_err());
        assert!(dc_sweep(&circuit, "V1", &[], &options).is_err());
        assert!(linspace(0.0, 1.0, 1).is_err());
        assert!(linspace(1.0, 1.0, 5).is_err());
        // Descending grids are allowed (reverse sweeps).
        let down = linspace(1.0, 0.0, 5).unwrap();
        assert_eq!(down[0], 1.0);
        assert_eq!(down[4], 0.0);
    }

    #[test]
    fn divider_sweep_is_linear() {
        let netlist = parse_deck("divider\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let values = linspace(0.0, 2.0, 5).unwrap();
        let sweep = dc_sweep(&circuit, "V1", &values, &NewtonOptions::default()).unwrap();
        assert_eq!(sweep.len(), 5);
        assert!(!sweep.is_empty());
        assert_eq!(sweep.source(), "V1");
        let outs = sweep.node_voltages("out");
        for (v_in, v_out) in values.iter().zip(&outs) {
            assert!((v_out - 0.5 * v_in).abs() < 1e-9);
        }
        let currents = sweep.source_currents("V1");
        assert!((currents[4] + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn diode_sweep_turns_on_smoothly() {
        let netlist = parse_deck("diode\nV1 in 0 0\nR1 in a 1k\nD1 a 0\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let values = linspace(0.0, 2.0, 21).unwrap();
        let sweep = dc_sweep(&circuit, "V1", &values, &NewtonOptions::default()).unwrap();
        let va = sweep.node_voltages("a");
        // Monotone increase, saturating near the diode drop.
        for pair in va.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
        assert!(*va.last().unwrap() < 0.85);
    }

    #[test]
    fn set_gate_sweep_shows_periodic_output_modulation() {
        // SET + load resistor driven by a swept gate: the output node must
        // oscillate with period e/Cg (this is the circuit-level face of the
        // Coulomb oscillations).
        let deck = "set inverter-ish\nVDD vdd 0 5m\nVG g 0 0\nRL vdd out 10meg\nX1 out g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n";
        let netlist = parse_deck(deck).unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let period = E / 1e-18;
        let values = linspace(0.0, 2.0 * period, 41).unwrap();
        let sweep = dc_sweep(&circuit, "VG", &values, &NewtonOptions::default()).unwrap();
        let outs = sweep.node_voltages("out");
        // Output at gate = half period (SET conducting) is much lower than at
        // gate = 0 or one full period (SET blockaded).
        let at = |frac: f64| {
            let target = frac * period;
            let idx = values
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 - target)
                        .abs()
                        .partial_cmp(&(b.1 - target).abs())
                        .unwrap()
                })
                .unwrap()
                .0;
            outs[idx]
        };
        assert!(at(0.5) < 0.7 * at(0.0));
        assert!(at(1.5) < 0.7 * at(1.0));
        // Periodicity: valleys at 0 and 1 periods agree.
        assert!((at(0.0) - at(1.0)).abs() < 0.05 * at(0.0));
    }
}
