//! Backward-Euler transient analysis with time-dependent source stimuli.

use crate::circuit::{Circuit, OperatingPoint};
use crate::dc::{newton, solve_dc_with_overrides, AnalysisMode, NewtonOptions};
use crate::error::SpiceError;
use std::collections::HashMap;

/// Time-dependent values for voltage sources. Sources without a stimulus
/// keep their DC value.
#[derive(Default)]
pub struct Stimulus {
    waveforms: HashMap<String, Box<dyn Fn(f64) -> f64 + Send + Sync>>,
}

impl std::fmt::Debug for Stimulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stimulus")
            .field("sources", &self.waveforms.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Stimulus {
    /// Creates an empty stimulus set (all sources keep their DC values).
    #[must_use]
    pub fn new() -> Self {
        Stimulus::default()
    }

    /// Attaches a waveform to the named voltage source.
    #[must_use]
    pub fn with_waveform(
        mut self,
        source: impl Into<String>,
        waveform: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.waveforms
            .insert(source.into().to_ascii_lowercase(), Box::new(waveform));
        self
    }

    /// Convenience: a sinusoidal source `offset + amplitude·sin(2πft)`.
    #[must_use]
    pub fn with_sine(
        self,
        source: impl Into<String>,
        offset: f64,
        amplitude: f64,
        frequency: f64,
    ) -> Self {
        self.with_waveform(source, move |t| {
            offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t).sin()
        })
    }

    /// Convenience: a voltage step from `before` to `after` at `t_step`.
    #[must_use]
    pub fn with_step(
        self,
        source: impl Into<String>,
        before: f64,
        after: f64,
        t_step: f64,
    ) -> Self {
        self.with_waveform(source, move |t| if t < t_step { before } else { after })
    }

    /// Evaluates all waveforms at time `t`.
    #[must_use]
    pub fn values_at(&self, t: f64) -> HashMap<String, f64> {
        self.waveforms
            .iter()
            .map(|(name, f)| (name.clone(), f(t)))
            .collect()
    }

    /// Returns `true` if no waveforms are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waveforms.is_empty()
    }
}

/// Options for the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Total simulated time in seconds.
    pub stop_time: f64,
    /// Newton options used at every time point.
    pub newton: NewtonOptions,
}

impl TransientOptions {
    /// Creates options with the default Newton settings.
    #[must_use]
    pub fn new(time_step: f64, stop_time: f64) -> Self {
        TransientOptions {
            time_step,
            stop_time,
            newton: NewtonOptions::default(),
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    points: Vec<OperatingPoint>,
}

impl TransientResult {
    /// The time points, in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The circuit state at every time point.
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Convenience: the waveform of one node voltage.
    #[must_use]
    pub fn node_waveform(&self, node: &str) -> Vec<f64> {
        self.points
            .iter()
            .map(|op| op.voltage(node).unwrap_or(f64::NAN))
            .collect()
    }

    /// Number of stored time points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the run produced no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Runs a fixed-step backward-Euler transient analysis.
///
/// The initial condition is the DC operating point with all stimuli
/// evaluated at `t = 0`.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidArgument`] for a non-positive time step or
/// stop time (or a stop time smaller than the step), and propagates solver
/// errors from any time point.
pub fn transient(
    circuit: &Circuit,
    options: &TransientOptions,
    stimulus: &Stimulus,
) -> Result<TransientResult, SpiceError> {
    if !(options.time_step > 0.0) || !options.time_step.is_finite() {
        return Err(SpiceError::InvalidArgument(format!(
            "time step must be positive and finite, got {}",
            options.time_step
        )));
    }
    if !(options.stop_time >= options.time_step) || !options.stop_time.is_finite() {
        return Err(SpiceError::InvalidArgument(format!(
            "stop time must be at least one time step, got {}",
            options.stop_time
        )));
    }

    // Initial condition at t = 0.
    let overrides0 = stimulus.values_at(0.0);
    let initial = solve_dc_with_overrides(circuit, &options.newton, &overrides0, None)?;
    let mut times = vec![0.0];
    let mut points = vec![initial];

    let steps = (options.stop_time / options.time_step).round() as usize;
    let mut previous = points[0].solution().to_vec();
    for step in 1..=steps {
        let t = step as f64 * options.time_step;
        let overrides = stimulus.values_at(t);
        let solution = newton(
            circuit,
            &options.newton,
            AnalysisMode::Transient {
                dt: options.time_step,
                previous: &previous,
            },
            previous.clone(),
            &overrides,
        )?;
        previous = solution.clone();
        times.push(t);
        points.push(circuit.operating_point_from_solution(solution));
    }
    Ok(TransientResult { times, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;

    #[test]
    fn options_are_validated() {
        let netlist = parse_deck("rc\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new();
        assert!(transient(&circuit, &TransientOptions::new(0.0, 1e-6), &stim).is_err());
        assert!(transient(&circuit, &TransientOptions::new(1e-6, 1e-9), &stim).is_err());
    }

    #[test]
    fn rc_step_response_matches_analytic_solution() {
        // R = 1 kΩ, C = 1 nF, τ = 1 µs. Step the source from 0 to 1 V at t=0
        // (via the stimulus) and compare against 1 − exp(−t/τ).
        let netlist = parse_deck("rc\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new().with_step("V1", 0.0, 1.0, 1e-12);
        let options = TransientOptions::new(10e-9, 5e-6);
        let result = transient(&circuit, &options, &stim).unwrap();
        let tau = 1e-6;
        for (t, v) in result.times().iter().zip(result.node_waveform("out")) {
            if *t == 0.0 {
                continue;
            }
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 0.02,
                "t = {t}: simulated {v}, analytic {expected}"
            );
        }
    }

    #[test]
    fn sine_stimulus_passes_through_resistive_divider() {
        let netlist = parse_deck("div\nV1 in 0 0\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new().with_sine("V1", 0.0, 1.0, 1e6);
        let options = TransientOptions::new(2e-8, 2e-6);
        let result = transient(&circuit, &options, &stim).unwrap();
        let outs = result.node_waveform("out");
        let max = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = outs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 0.5).abs() < 0.02, "max {max}");
        assert!((min + 0.5).abs() < 0.02, "min {min}");
    }

    #[test]
    fn dc_sources_keep_their_value_without_stimulus() {
        let netlist = parse_deck("rc\nV1 in 0 0.7\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let result = transient(
            &circuit,
            &TransientOptions::new(1e-7, 2e-6),
            &Stimulus::new(),
        )
        .unwrap();
        // Already at steady state: the output tracks 0.7 V throughout.
        for v in result.node_waveform("out") {
            assert!((v - 0.7).abs() < 1e-6);
        }
        assert_eq!(result.len(), result.times().len());
        assert!(!result.is_empty());
    }

    #[test]
    fn stimulus_helpers_compose() {
        let stim = Stimulus::new()
            .with_step("VA", 0.0, 1.0, 1e-9)
            .with_sine("VB", 0.5, 0.1, 1e6);
        assert!(!stim.is_empty());
        let at_zero = stim.values_at(0.0);
        assert_eq!(at_zero.get("va"), Some(&0.0));
        assert!((at_zero.get("vb").unwrap() - 0.5).abs() < 1e-12);
        let later = stim.values_at(1e-6);
        assert_eq!(later.get("va"), Some(&1.0));
    }
}
