//! Backward-Euler transient analysis with time-dependent source stimuli.
//!
//! Two faces share one integrator core (`integrate_sampled`):
//!
//! * [`fn@transient`] — the classical fixed-step analysis returning every
//!   time point as an [`OperatingPoint`];
//! * [`SpiceTransientEngine`] — the [`se_engine::TransientEngine`]
//!   implementation, which warm-starts from the DC solution (resolving
//!   names exactly as [`crate::SpiceDcEngine`] does), integrates with
//!   backward Euler between the requested sample times, and reports
//!   instantaneous source branch currents at each sample.

use crate::circuit::{Circuit, OperatingPoint};
use crate::dc::{newton, solve_dc_with_overrides, AnalysisMode, NewtonOptions};
use crate::engine::SpiceDcEngine;
use crate::error::SpiceError;
use se_engine::{ControlId, ObservableId, TransientEngine, TransientTrace, Waveform};
use std::collections::HashMap;

/// Time-dependent values for voltage sources. Sources without a stimulus
/// keep their DC value.
#[derive(Default)]
pub struct Stimulus {
    waveforms: HashMap<String, Box<dyn Fn(f64) -> f64 + Send + Sync>>,
}

impl std::fmt::Debug for Stimulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stimulus")
            .field("sources", &self.waveforms.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Stimulus {
    /// Creates an empty stimulus set (all sources keep their DC values).
    #[must_use]
    pub fn new() -> Self {
        Stimulus::default()
    }

    /// Attaches a waveform to the named voltage source.
    #[must_use]
    pub fn with_waveform(
        mut self,
        source: impl Into<String>,
        waveform: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.waveforms
            .insert(source.into().to_ascii_lowercase(), Box::new(waveform));
        self
    }

    /// Convenience: a sinusoidal source `offset + amplitude·sin(2πft)`.
    #[must_use]
    pub fn with_sine(
        self,
        source: impl Into<String>,
        offset: f64,
        amplitude: f64,
        frequency: f64,
    ) -> Self {
        self.with_waveform(source, move |t| {
            offset + amplitude * (2.0 * std::f64::consts::PI * frequency * t).sin()
        })
    }

    /// Convenience: a voltage step from `before` to `after` at `t_step`.
    #[must_use]
    pub fn with_step(
        self,
        source: impl Into<String>,
        before: f64,
        after: f64,
        t_step: f64,
    ) -> Self {
        self.with_waveform(source, move |t| if t < t_step { before } else { after })
    }

    /// Attaches a shared [`Waveform`] description (step, ramp, pulse train,
    /// PWL, sine) to the named voltage source — the same vocabulary every
    /// other transient backend consumes.
    #[must_use]
    pub fn with_source(self, source: impl Into<String>, waveform: Waveform) -> Self {
        self.with_waveform(source, move |t| waveform.value_at(t))
    }

    /// Evaluates all waveforms at time `t`.
    #[must_use]
    pub fn values_at(&self, t: f64) -> HashMap<String, f64> {
        self.waveforms
            .iter()
            .map(|(name, f)| (name.clone(), f(t)))
            .collect()
    }

    /// Returns `true` if no waveforms are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waveforms.is_empty()
    }
}

/// Options for the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Total simulated time in seconds.
    pub stop_time: f64,
    /// Newton options used at every time point.
    pub newton: NewtonOptions,
}

impl TransientOptions {
    /// Creates options with the default Newton settings.
    #[must_use]
    pub fn new(time_step: f64, stop_time: f64) -> Self {
        TransientOptions {
            time_step,
            stop_time,
            newton: NewtonOptions::default(),
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    points: Vec<OperatingPoint>,
}

impl TransientResult {
    /// The time points, in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The circuit state at every time point.
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Convenience: the waveform of one node voltage.
    #[must_use]
    pub fn node_waveform(&self, node: &str) -> Vec<f64> {
        self.points
            .iter()
            .map(|op| op.voltage(node).unwrap_or(f64::NAN))
            .collect()
    }

    /// Number of stored time points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the run produced no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Runs a fixed-step backward-Euler transient analysis.
///
/// The initial condition is the DC operating point with all stimuli
/// evaluated at `t = 0`.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidArgument`] for a non-positive time step or
/// stop time (or a stop time smaller than the step), and propagates solver
/// errors from any time point.
pub fn transient(
    circuit: &Circuit,
    options: &TransientOptions,
    stimulus: &Stimulus,
) -> Result<TransientResult, SpiceError> {
    if !(options.time_step > 0.0) || !options.time_step.is_finite() {
        return Err(SpiceError::InvalidArgument(format!(
            "time step must be positive and finite, got {}",
            options.time_step
        )));
    }
    if !(options.stop_time >= options.time_step) || !options.stop_time.is_finite() {
        return Err(SpiceError::InvalidArgument(format!(
            "stop time must be at least one time step, got {}",
            options.stop_time
        )));
    }
    let times = se_engine::sample_times(options.time_step, options.stop_time)?;
    let points = integrate_sampled(
        circuit,
        &options.newton,
        stimulus,
        &times,
        options.time_step,
    )?;
    Ok(TransientResult { times, points })
}

/// The shared backward-Euler integrator core: warm-starts from the DC
/// solution with all stimuli evaluated at `t = 0`, integrates forward and
/// returns the circuit state at each requested sample time.
///
/// Between consecutive samples the interval is subdivided into equal
/// backward-Euler steps no longer than `max_step`, so a coarse sample grid
/// never degrades integration accuracy — sampling and stepping are
/// independent choices.
pub(crate) fn integrate_sampled(
    circuit: &Circuit,
    newton_options: &NewtonOptions,
    stimulus: &Stimulus,
    times: &[f64],
    max_step: f64,
) -> Result<Vec<OperatingPoint>, SpiceError> {
    se_engine::validate_sample_times(times)?;
    if !(max_step > 0.0) || !max_step.is_finite() {
        return Err(SpiceError::InvalidArgument(format!(
            "integration step must be positive and finite, got {max_step}"
        )));
    }

    // Initial condition: the DC operating point at t = 0.
    let overrides0 = stimulus.values_at(0.0);
    let initial = solve_dc_with_overrides(circuit, newton_options, &overrides0, None)?;
    let mut previous = initial.solution().to_vec();
    let mut points = Vec::with_capacity(times.len());
    let mut t_prev = 0.0;
    for &t_sample in times {
        if t_sample == 0.0 {
            points.push(initial.clone());
            continue;
        }
        let span = t_sample - t_prev;
        // The small relative slack keeps rounding noise in `span` (sample
        // times are differences of accumulated floats) from splitting an
        // exact multiple of `max_step` into one extra, uneven step.
        let steps = (span / max_step * (1.0 - 1e-12)).ceil().max(1.0) as usize;
        let dt = span / steps as f64;
        for step in 1..=steps {
            let t = t_prev + step as f64 * dt;
            let overrides = stimulus.values_at(t);
            let solution = newton(
                circuit,
                newton_options,
                AnalysisMode::Transient {
                    dt,
                    previous: &previous,
                },
                previous.clone(),
                &overrides,
            )?;
            previous = solution;
        }
        points.push(circuit.operating_point_from_solution(previous.clone()));
        t_prev = t_sample;
    }
    Ok(points)
}

/// The SPICE backward-Euler integrator as a [`TransientEngine`].
///
/// Drives are the circuit's voltage sources (resolved by name, case
/// insensitively, exactly as [`SpiceDcEngine`] resolves them) and
/// observables are source branch currents. A run warm-starts from the DC
/// solution with all waveforms evaluated at `t = 0`, then integrates with
/// steps no longer than the configured maximum between samples, reporting
/// the *instantaneous* branch currents at each sample time. The integrator
/// is deterministic, so the per-run seed is ignored.
#[derive(Debug, Clone)]
pub struct SpiceTransientEngine {
    dc: SpiceDcEngine,
    max_step: f64,
}

impl SpiceTransientEngine {
    /// Wraps a circuit with the given Newton options and maximum
    /// backward-Euler step (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidArgument`] for a non-positive or
    /// non-finite step.
    pub fn new(
        circuit: Circuit,
        options: NewtonOptions,
        max_step: f64,
    ) -> Result<Self, SpiceError> {
        if !(max_step > 0.0) || !max_step.is_finite() {
            return Err(SpiceError::InvalidArgument(format!(
                "integration step must be positive and finite, got {max_step}"
            )));
        }
        Ok(SpiceTransientEngine {
            dc: SpiceDcEngine::new(circuit, options),
            max_step,
        })
    }

    /// The wrapped circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.dc.circuit()
    }

    /// The maximum backward-Euler integration step, seconds.
    #[must_use]
    pub fn max_step(&self) -> f64 {
        self.max_step
    }
}

impl TransientEngine for SpiceTransientEngine {
    type Error = SpiceError;

    fn engine_name(&self) -> &'static str {
        "spice-transient"
    }

    fn resolve_drive(&self, name: &str) -> Result<ControlId, SpiceError> {
        self.dc.resolve_source(name).map(ControlId)
    }

    fn resolve_observable(&self, name: &str) -> Result<ObservableId, SpiceError> {
        self.dc.resolve_source(name).map(ObservableId)
    }

    fn transient_currents(
        &self,
        drives: &[(ControlId, Waveform)],
        observables: &[ObservableId],
        times: &[f64],
        _seed: u64,
    ) -> Result<TransientTrace, SpiceError> {
        let mut stimulus = Stimulus::new();
        for (ControlId(source), waveform) in drives {
            let name = self.dc.source_names().get(*source).ok_or_else(|| {
                SpiceError::InvalidArgument(format!("unknown drive handle {source}"))
            })?;
            stimulus = stimulus.with_source(name.clone(), waveform.clone());
        }
        // Resolve observable handles before integrating, so a bad handle
        // fails fast instead of after the whole solve.
        let observable_names: Vec<&String> = observables
            .iter()
            .map(|&ObservableId(source)| {
                self.dc.source_names().get(source).ok_or_else(|| {
                    SpiceError::InvalidArgument(format!("unknown observable handle {source}"))
                })
            })
            .collect::<Result<_, _>>()?;
        let points = integrate_sampled(
            self.circuit(),
            self.dc.newton_options(),
            &stimulus,
            times,
            self.max_step,
        )?;
        let mut currents = Vec::with_capacity(times.len() * observables.len());
        for point in &points {
            for &name in &observable_names {
                let current = point.source_current(name).ok_or_else(|| {
                    SpiceError::InvalidArgument(format!(
                        "no branch current recorded for source `{name}`"
                    ))
                })?;
                currents.push(current);
            }
        }
        Ok(TransientTrace::new(
            times.to_vec(),
            observables.len(),
            currents,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_netlist::parse_deck;

    #[test]
    fn options_are_validated() {
        let netlist = parse_deck("rc\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new();
        assert!(transient(&circuit, &TransientOptions::new(0.0, 1e-6), &stim).is_err());
        assert!(transient(&circuit, &TransientOptions::new(1e-6, 1e-9), &stim).is_err());
    }

    #[test]
    fn rc_step_response_matches_analytic_solution() {
        // R = 1 kΩ, C = 1 nF, τ = 1 µs. Step the source from 0 to 1 V at t=0
        // (via the stimulus) and compare against 1 − exp(−t/τ).
        let netlist = parse_deck("rc\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new().with_step("V1", 0.0, 1.0, 1e-12);
        let options = TransientOptions::new(10e-9, 5e-6);
        let result = transient(&circuit, &options, &stim).unwrap();
        let tau = 1e-6;
        for (t, v) in result.times().iter().zip(result.node_waveform("out")) {
            if *t == 0.0 {
                continue;
            }
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 0.02,
                "t = {t}: simulated {v}, analytic {expected}"
            );
        }
    }

    #[test]
    fn sine_stimulus_passes_through_resistive_divider() {
        let netlist = parse_deck("div\nV1 in 0 0\nR1 in out 1k\nR2 out 0 1k\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new().with_sine("V1", 0.0, 1.0, 1e6);
        let options = TransientOptions::new(2e-8, 2e-6);
        let result = transient(&circuit, &options, &stim).unwrap();
        let outs = result.node_waveform("out");
        let max = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = outs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 0.5).abs() < 0.02, "max {max}");
        assert!((min + 0.5).abs() < 0.02, "min {min}");
    }

    #[test]
    fn dc_sources_keep_their_value_without_stimulus() {
        let netlist = parse_deck("rc\nV1 in 0 0.7\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let result = transient(
            &circuit,
            &TransientOptions::new(1e-7, 2e-6),
            &Stimulus::new(),
        )
        .unwrap();
        // Already at steady state: the output tracks 0.7 V throughout.
        for v in result.node_waveform("out") {
            assert!((v - 0.7).abs() < 1e-6);
        }
        assert_eq!(result.len(), result.times().len());
        assert!(!result.is_empty());
    }

    #[test]
    fn stimulus_helpers_compose() {
        let stim = Stimulus::new()
            .with_step("VA", 0.0, 1.0, 1e-9)
            .with_sine("VB", 0.5, 0.1, 1e6);
        assert!(!stim.is_empty());
        let at_zero = stim.values_at(0.0);
        assert_eq!(at_zero.get("va"), Some(&0.0));
        assert!((at_zero.get("vb").unwrap() - 0.5).abs() < 1e-12);
        let later = stim.values_at(1e-6);
        assert_eq!(later.get("va"), Some(&1.0));
    }

    #[test]
    fn shared_waveforms_drive_the_stimulus() {
        let stim =
            Stimulus::new().with_source("V1", Waveform::pulse(0.0, 1.0, 1e-9, 1e-9, 4e-9).unwrap());
        let values = stim.values_at(1.5e-9);
        assert_eq!(values.get("v1"), Some(&1.0));
        assert_eq!(stim.values_at(3e-9).get("v1"), Some(&0.0));
    }

    fn rc_engine() -> SpiceTransientEngine {
        let netlist = parse_deck("rc\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        SpiceTransientEngine::new(circuit, NewtonOptions::default(), 10e-9).unwrap()
    }

    #[test]
    fn engine_validates_construction_and_sample_grids() {
        let netlist = parse_deck("rc\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        assert!(SpiceTransientEngine::new(circuit.clone(), NewtonOptions::default(), 0.0).is_err());
        let engine = SpiceTransientEngine::new(circuit, NewtonOptions::default(), 1e-9).unwrap();
        let drive = engine.resolve_drive("V1").unwrap();
        let obs = engine.resolve_observable("v1").unwrap();
        assert!(engine.resolve_drive("VX").is_err());
        assert!(engine
            .transient_currents(&[(drive, Waveform::dc(1.0))], &[obs], &[1e-9, 0.5e-9], 0)
            .is_err());
    }

    #[test]
    fn engine_trace_matches_the_classical_analysis() {
        // The same RC step through both faces: the trait trace's branch
        // current must equal -(V1 - V_out)/R at each shared sample.
        let engine = rc_engine();
        let step = Waveform::step(0.0, 1.0, 1e-12).unwrap();
        let times = se_engine::sample_times(100e-9, 2e-6).unwrap();
        let drive = engine.resolve_drive("V1").unwrap();
        let obs = engine.resolve_observable("V1").unwrap();
        let trace = engine
            .transient_currents(&[(drive, step)], &[obs], &times, 42)
            .unwrap();

        let netlist = parse_deck("rc\nV1 in 0 0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
        let circuit = Circuit::new(&netlist).unwrap();
        let stim = Stimulus::new().with_step("V1", 0.0, 1.0, 1e-12);
        let classic = transient(&circuit, &TransientOptions::new(10e-9, 2e-6), &stim).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let j = classic
                .times()
                .iter()
                .position(|&ct| (ct - t).abs() < 1e-15)
                .expect("shared sample time");
            let classic_current = classic.points()[j].source_current("v1").unwrap();
            // Agreement is limited by the Newton tolerance, not bit-exact:
            // the two faces accumulate time with different roundings.
            assert!(
                (trace.at(i, 0) - classic_current).abs() < 1e-4 * classic_current.abs().max(1e-9),
                "t = {t}: {} vs {}",
                trace.at(i, 0),
                classic_current
            );
        }
    }

    #[test]
    fn subdivided_intervals_keep_integration_accuracy() {
        // Sample only every 0.5 µs but cap steps at 10 ns: the RC charging
        // curve must still match the analytic solution at the samples.
        let engine = rc_engine();
        let step = Waveform::step(0.0, 1.0, 1e-12).unwrap();
        let times = [0.5e-6, 1e-6, 2e-6, 4e-6];
        let drive = engine.resolve_drive("V1").unwrap();
        let obs = engine.resolve_observable("V1").unwrap();
        let trace = engine
            .transient_currents(&[(drive, step)], &[obs], &times, 0)
            .unwrap();
        let tau = 1e-6;
        for (i, &t) in times.iter().enumerate() {
            // Branch current of V1 charging C through R: -(1 V)·e^(−t/τ)/R.
            // Backward Euler at dt = τ/100 accumulates ~2–3 % by t = 4τ.
            let expected = -(-t / tau).exp() / 1e3;
            assert!(
                (trace.at(i, 0) - expected).abs() < 0.03 * expected.abs().max(1e-6),
                "t = {t}: {} vs {expected}",
                trace.at(i, 0)
            );
        }
    }
}
