//! Fundamental physical constants (2018 CODATA, SI units).
//!
//! Only the constants actually needed by orthodox single-electron-tunnelling
//! theory are exposed; everything is a plain `f64` in SI units so that the
//! physics code can use them directly in formulas.

use crate::quantity::Joule;

/// Elementary charge `e` in coulomb.
pub const ELEMENTARY_CHARGE: Joule = Joule(1.602_176_634e-19);

/// Elementary charge `e` as a bare `f64` in coulomb.
///
/// The typed constant [`ELEMENTARY_CHARGE`] is expressed in joule because the
/// orthodox-theory code mostly uses `e` inside energy expressions
/// (`e·V` products); this bare value is for charge bookkeeping.
pub const E: f64 = 1.602_176_634e-19;

/// Boltzmann constant `k_B` in joule per kelvin.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Planck constant `h` in joule second.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Reduced Planck constant `ħ = h / 2π` in joule second.
pub const REDUCED_PLANCK: f64 = PLANCK / (2.0 * std::f64::consts::PI);

/// Resistance quantum `R_Q = h / e²` ≈ 25.8 kΩ.
///
/// Tunnel junctions must have a tunnel resistance well above `R_Q` for the
/// orthodox theory (localized electrons, sequential tunnelling) to apply; the
/// cotunneling correction in `se-orthodox` is parameterised by `R_t / R_Q`.
pub const RESISTANCE_QUANTUM: f64 = PLANCK / (E * E);

/// Conductance quantum `G_Q = e² / h` in siemens.
pub const CONDUCTANCE_QUANTUM: f64 = 1.0 / RESISTANCE_QUANTUM;

/// Absolute zero expressed in degrees Celsius, for user-facing conversions.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_quantum_is_about_25_8_kohm() {
        assert!((RESISTANCE_QUANTUM - 25_812.807).abs() < 0.5);
    }

    #[test]
    fn conductance_quantum_is_inverse_of_resistance_quantum() {
        assert!((CONDUCTANCE_QUANTUM * RESISTANCE_QUANTUM - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elementary_charge_matches_bare_value() {
        assert_eq!(ELEMENTARY_CHARGE.0, E);
    }

    #[test]
    fn thermal_energy_at_room_temperature_is_about_25_mev() {
        let kt = BOLTZMANN * 300.0;
        let mev = kt / E * 1e3;
        assert!((mev - 25.85).abs() < 0.2);
    }

    #[test]
    fn reduced_planck_is_h_over_two_pi() {
        assert!((REDUCED_PLANCK * 2.0 * std::f64::consts::PI - PLANCK).abs() < 1e-45);
    }
}
