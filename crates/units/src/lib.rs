//! Physical constants and strongly typed physical quantities used throughout
//! the single-electronics toolkit.
//!
//! Single-electron circuits live at the scale where the elementary charge,
//! attofarad capacitances and microelectronvolt energies meet. Mixing up a
//! value in volts with one in millivolts, or a capacitance with a charge, is
//! one of the easiest ways to get silently wrong Coulomb-blockade physics.
//! This crate therefore provides:
//!
//! * [`constants`] — CODATA values of the elementary charge, Boltzmann
//!   constant, Planck constant and derived quantities such as the resistance
//!   quantum;
//! * [`quantity`] — thin `f64` newtypes ([`Volt`], [`Ampere`], [`Farad`],
//!   [`Coulomb`], [`Kelvin`], [`Second`], [`Ohm`], [`Joule`], [`Hertz`])
//!   with the physically meaningful conversions between them;
//! * [`prefix`] — parsing of SPICE-style magnitude suffixes (`1f`, `2.5meg`,
//!   `10a`, …) used by the netlist parser;
//! * [`temperature`] — helpers for thermal energy and the common
//!   "charging energy vs. thermal energy" comparisons.
//!
//! # Example
//!
//! ```
//! use se_units::quantity::{Farad, Kelvin};
//! use se_units::temperature::{charging_energy, thermal_energy};
//!
//! // Charging energy of a 1 aF island vs. thermal energy at 4.2 K.
//! let ec = charging_energy(Farad(1e-18));
//! let kt = thermal_energy(Kelvin(4.2));
//! assert!(ec.0 > 100.0 * kt.0, "blockade must dominate thermal smearing");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod prefix;
pub mod quantity;
pub mod temperature;

pub use constants::{BOLTZMANN, ELEMENTARY_CHARGE, PLANCK, REDUCED_PLANCK, RESISTANCE_QUANTUM};
pub use prefix::{parse_value, ParseValueError};
pub use quantity::{Ampere, Coulomb, Farad, Hertz, Joule, Kelvin, Ohm, Second, Volt};
pub use temperature::{charging_energy, thermal_energy, thermal_voltage};
