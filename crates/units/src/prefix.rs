//! Parsing of numeric values with SPICE-style magnitude suffixes.
//!
//! Netlist decks for single-electron circuits routinely contain values such
//! as `1a` (1 attofarad), `100k` (100 kΩ) or `50m` (50 mV). This module
//! implements the classic SPICE suffix rules, **including** the historical
//! quirk that `m` means *milli* and `meg` means *mega*, plus the small
//! suffixes (`f`, `a`, `z`, `y`) that matter at the single-electron scale.

use std::error::Error;
use std::fmt;

/// Error returned by [`parse_value`] when a string is not a valid
/// SPICE-style number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    input: String,
    reason: ParseValueReason,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseValueReason {
    Empty,
    InvalidNumber,
    UnknownSuffix(String),
}

impl ParseValueError {
    /// The original input string that failed to parse.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            ParseValueReason::Empty => write!(f, "empty value"),
            ParseValueReason::InvalidNumber => {
                write!(f, "invalid numeric literal `{}`", self.input)
            }
            ParseValueReason::UnknownSuffix(s) => {
                write!(f, "unknown magnitude suffix `{s}` in `{}`", self.input)
            }
        }
    }
}

impl Error for ParseValueError {}

/// Parses a SPICE-style value such as `1.5k`, `2meg`, `10a`, `3.3`, `1e-18`.
///
/// Suffix table (case-insensitive):
///
/// | suffix | factor  | | suffix | factor  |
/// |--------|---------|-|--------|---------|
/// | `t`    | 1e12    | | `u`    | 1e-6    |
/// | `g`    | 1e9     | | `n`    | 1e-9    |
/// | `meg`  | 1e6     | | `p`    | 1e-12   |
/// | `k`    | 1e3     | | `f`    | 1e-15   |
/// | `m`    | 1e-3    | | `a`    | 1e-18   |
/// |        |         | | `z`    | 1e-21   |
///
/// Any trailing unit letters after a recognised suffix are ignored, in the
/// SPICE tradition (`10pF` parses the same as `10p`).
///
/// # Errors
///
/// Returns [`ParseValueError`] if the string is empty, has no valid leading
/// numeric literal, or carries an unrecognised suffix that is not a plain
/// unit annotation.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), se_units::ParseValueError> {
/// assert_eq!(se_units::parse_value("1a")?, 1e-18);
/// assert_eq!(se_units::parse_value("2.5meg")?, 2.5e6);
/// assert_eq!(se_units::parse_value("100k")?, 1e5);
/// assert_eq!(se_units::parse_value("50m")?, 0.05);
/// # Ok(())
/// # }
/// ```
pub fn parse_value(text: &str) -> Result<f64, ParseValueError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ParseValueError {
            input: text.to_string(),
            reason: ParseValueReason::Empty,
        });
    }

    // Split into the longest leading float literal and the suffix.
    let bytes = trimmed.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    while end < bytes.len() {
        let b = bytes[end] as char;
        let ok = match b {
            '0'..='9' => {
                seen_digit = true;
                true
            }
            '+' | '-' => end == 0 || matches!(bytes[end - 1] as char, 'e' | 'E'),
            '.' => true,
            'e' | 'E' => {
                // Only part of the number if followed by digit or sign and we
                // have already seen a digit (otherwise it is a suffix letter).
                seen_digit
                    && end + 1 < bytes.len()
                    && matches!(bytes[end + 1] as char, '0'..='9' | '+' | '-')
            }
            _ => false,
        };
        if ok {
            end += 1;
        } else {
            break;
        }
    }

    let (num_str, suffix) = trimmed.split_at(end);
    let base: f64 = num_str.parse().map_err(|_| ParseValueError {
        input: text.to_string(),
        reason: ParseValueReason::InvalidNumber,
    })?;

    let factor = suffix_factor(suffix).ok_or_else(|| ParseValueError {
        input: text.to_string(),
        reason: ParseValueReason::UnknownSuffix(suffix.to_string()),
    })?;

    Ok(base * factor)
}

/// Returns the scaling factor for a SPICE suffix, or `None` if unknown.
fn suffix_factor(suffix: &str) -> Option<f64> {
    let s = suffix.to_ascii_lowercase();
    if s.is_empty() {
        return Some(1.0);
    }
    // `meg` must be checked before `m`.
    let (factor, rest) = if let Some(rest) = s.strip_prefix("meg") {
        (1e6, rest)
    } else if let Some(rest) = s.strip_prefix('t') {
        (1e12, rest)
    } else if let Some(rest) = s.strip_prefix('g') {
        (1e9, rest)
    } else if let Some(rest) = s.strip_prefix('k') {
        (1e3, rest)
    } else if let Some(rest) = s.strip_prefix('m') {
        (1e-3, rest)
    } else if let Some(rest) = s.strip_prefix('u') {
        (1e-6, rest)
    } else if let Some(rest) = s.strip_prefix('n') {
        (1e-9, rest)
    } else if let Some(rest) = s.strip_prefix('p') {
        (1e-12, rest)
    } else if let Some(rest) = s.strip_prefix('f') {
        (1e-15, rest)
    } else if let Some(rest) = s.strip_prefix('a') {
        (1e-18, rest)
    } else if let Some(rest) = s.strip_prefix('z') {
        (1e-21, rest)
    } else {
        // Pure unit annotation like "v" or "ohm": treat as factor 1 if it is
        // alphabetic only.
        if s.chars().all(|c| c.is_ascii_alphabetic()) {
            (1.0, "")
        } else {
            return None;
        }
    };
    // Whatever remains must be a unit annotation (letters only).
    if rest.chars().all(|c| c.is_ascii_alphabetic()) {
        Some(factor)
    } else {
        None
    }
}

/// Formats a value using engineering notation with a SPICE suffix where one
/// exists, e.g. `1.5e-18` → `"1.5a"`.
#[must_use]
pub fn format_engineering(value: f64) -> String {
    if value == 0.0 || !value.is_finite() {
        return format!("{value}");
    }
    const TABLE: &[(f64, &str)] = &[
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
        (1e-21, "z"),
    ];
    let magnitude = value.abs();
    for &(factor, suffix) in TABLE {
        if magnitude >= factor {
            let scaled = value / factor;
            return format!("{scaled:.4}{suffix}");
        }
    }
    format!("{value:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-3.5").unwrap(), -3.5);
        assert_eq!(parse_value("1e-18").unwrap(), 1e-18);
        assert_eq!(parse_value("2.5E3").unwrap(), 2500.0);
    }

    #[test]
    fn parses_suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("1K").unwrap(), 1e3);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1u").unwrap(), 1e-6);
        assert_eq!(parse_value("1n").unwrap(), 1e-9);
        assert_eq!(parse_value("1p").unwrap(), 1e-12);
        assert_eq!(parse_value("1f").unwrap(), 1e-15);
        assert_eq!(parse_value("1a").unwrap(), 1e-18);
        assert_eq!(parse_value("1z").unwrap(), 1e-21);
        assert_eq!(parse_value("1t").unwrap(), 1e12);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
    }

    #[test]
    fn ignores_unit_annotations() {
        assert_eq!(parse_value("10pF").unwrap(), 10e-12);
        assert_eq!(parse_value("100kOhm").unwrap(), 1e5);
        assert_eq!(parse_value("3V").unwrap(), 3.0);
        assert_eq!(parse_value("1aF").unwrap(), 1e-18);
    }

    #[test]
    fn negative_and_exponent_with_suffix() {
        assert_eq!(parse_value("-2.5k").unwrap(), -2500.0);
        assert_eq!(parse_value("1.5e2m").unwrap(), 0.15);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("abc").is_err());
        assert!(parse_value("1.2.3").is_err());
        assert!(parse_value("1k2").is_err());
    }

    #[test]
    fn error_display_mentions_input() {
        let err = parse_value("1q#").unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("1q#"),
            "error message should cite the input: {text}"
        );
    }

    #[test]
    fn engineering_format_round_trip() {
        for &value in &[1.5e-18, 2.2e3, 4.7e-12, 0.05, 3.0e6] {
            let text = format_engineering(value);
            let parsed = parse_value(&text).unwrap();
            let rel = ((parsed - value) / value).abs();
            assert!(rel < 1e-3, "{value} -> {text} -> {parsed}");
        }
    }
}
