//! Strongly typed physical quantities.
//!
//! Each quantity is a transparent newtype over `f64` in SI units. The types
//! intentionally implement only the arithmetic that is physically meaningful
//! (e.g. `Volt * Farad -> Coulomb`, `Volt / Ohm -> Ampere`); anything else
//! must go through the `.0` field explicitly, which keeps unit errors visible
//! in review.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volt.
    Volt,
    "V"
);
quantity!(
    /// Electric current in ampere.
    Ampere,
    "A"
);
quantity!(
    /// Capacitance in farad.
    Farad,
    "F"
);
quantity!(
    /// Electric charge in coulomb.
    Coulomb,
    "C"
);
quantity!(
    /// Thermodynamic temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Time in second.
    Second,
    "s"
);
quantity!(
    /// Resistance in ohm.
    Ohm,
    "Ohm"
);
quantity!(
    /// Energy in joule.
    Joule,
    "J"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

// --- physically meaningful cross-type arithmetic -------------------------

impl Mul<Farad> for Volt {
    type Output = Coulomb;
    /// `Q = C · V`
    fn mul(self, rhs: Farad) -> Coulomb {
        Coulomb(self.0 * rhs.0)
    }
}

impl Mul<Volt> for Farad {
    type Output = Coulomb;
    /// `Q = C · V`
    fn mul(self, rhs: Volt) -> Coulomb {
        Coulomb(self.0 * rhs.0)
    }
}

impl Div<Farad> for Coulomb {
    type Output = Volt;
    /// `V = Q / C`
    fn div(self, rhs: Farad) -> Volt {
        Volt(self.0 / rhs.0)
    }
}

impl Div<Volt> for Coulomb {
    type Output = Farad;
    /// `C = Q / V`
    fn div(self, rhs: Volt) -> Farad {
        Farad(self.0 / rhs.0)
    }
}

impl Div<Ohm> for Volt {
    type Output = Ampere;
    /// Ohm's law `I = V / R`.
    fn div(self, rhs: Ohm) -> Ampere {
        Ampere(self.0 / rhs.0)
    }
}

impl Mul<Ohm> for Ampere {
    type Output = Volt;
    /// Ohm's law `V = I · R`.
    fn mul(self, rhs: Ohm) -> Volt {
        Volt(self.0 * rhs.0)
    }
}

impl Mul<Second> for Ampere {
    type Output = Coulomb;
    /// `Q = I · t`
    fn mul(self, rhs: Second) -> Coulomb {
        Coulomb(self.0 * rhs.0)
    }
}

impl Div<Second> for Coulomb {
    type Output = Ampere;
    /// `I = Q / t`
    fn div(self, rhs: Second) -> Ampere {
        Ampere(self.0 / rhs.0)
    }
}

impl Mul<Coulomb> for Volt {
    type Output = Joule;
    /// `E = Q · V`
    fn mul(self, rhs: Coulomb) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

impl Mul<Volt> for Coulomb {
    type Output = Joule;
    /// `E = Q · V`
    fn mul(self, rhs: Volt) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

impl Div<Coulomb> for Joule {
    type Output = Volt;
    /// `V = E / Q`
    fn div(self, rhs: Coulomb) -> Volt {
        Volt(self.0 / rhs.0)
    }
}

impl Div<Second> for f64 {
    type Output = Hertz;
    /// `f = 1 / t` (used for rates/periods).
    fn div(self, rhs: Second) -> Hertz {
        Hertz(self / rhs.0)
    }
}

impl Hertz {
    /// Returns the period `1/f`.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero frequency yields an infinite period.
    #[must_use]
    pub fn period(self) -> Second {
        Second(1.0 / self.0)
    }
}

impl Second {
    /// Returns the frequency `1/t`.
    #[must_use]
    pub fn frequency(self) -> Hertz {
        Hertz(1.0 / self.0)
    }
}

impl Joule {
    /// Converts an energy to electronvolt.
    #[must_use]
    pub fn to_electronvolt(self) -> f64 {
        self.0 / crate::constants::E
    }

    /// Creates an energy from a value in electronvolt.
    #[must_use]
    pub fn from_electronvolt(ev: f64) -> Self {
        Joule(ev * crate::constants::E)
    }
}

impl Coulomb {
    /// Expresses the charge in units of the elementary charge `e`.
    #[must_use]
    pub fn in_elementary_charges(self) -> f64 {
        self.0 / crate::constants::E
    }

    /// Creates a charge from a number of elementary charges.
    #[must_use]
    pub fn from_elementary_charges(n: f64) -> Self {
        Coulomb(n * crate::constants::E)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::E;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volt(1.5);
        let r = Ohm(100.0);
        let i = v / r;
        assert!((i.0 - 0.015).abs() < 1e-15);
        let back = i * r;
        assert!((back.0 - v.0).abs() < 1e-15);
    }

    #[test]
    fn charge_voltage_capacitance_relations() {
        let c = Farad(2e-18);
        let v = Volt(0.5);
        let q = v * c;
        assert!((q.0 - 1e-18).abs() < 1e-30);
        assert!((q / c - v).abs().0 < 1e-15);
        assert!(((q / v).0 - c.0).abs() < 1e-30);
    }

    #[test]
    fn energy_in_electronvolt() {
        let e = Joule::from_electronvolt(1.0);
        assert!((e.0 - E).abs() < 1e-30);
        assert!((e.to_electronvolt() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elementary_charge_round_trip() {
        let q = Coulomb::from_elementary_charges(2.5);
        assert!((q.in_elementary_charges() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Volt(1.0)), "1 V");
        assert_eq!(format!("{}", Ohm(2.0)), "2 Ohm");
    }

    #[test]
    fn like_quantity_ratio_is_dimensionless() {
        let ratio: f64 = Farad(4.0) / Farad(2.0);
        assert!((ratio - 2.0).abs() < 1e-15);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Volt = [Volt(1.0), Volt(2.0), Volt(3.0)].into_iter().sum();
        assert!((total.0 - 6.0).abs() < 1e-15);
    }

    #[test]
    fn period_frequency_round_trip() {
        let f = Hertz(2.0e9);
        let t = f.period();
        assert!((t.frequency().0 - f.0).abs() < 1e-3);
    }
}
