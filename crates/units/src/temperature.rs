//! Thermal-energy helpers and the charging-energy comparisons that govern
//! when Coulomb blockade is observable.
//!
//! The rule of thumb quoted in the paper — room-temperature operation needs
//! structures in the few-nanometre regime — is quantified here: blockade is
//! visible when the single-electron charging energy `E_C = e²/2CΣ` exceeds
//! the thermal energy `k_B·T` by a comfortable factor (≈ 10–40×).

use crate::constants::{BOLTZMANN, E};
use crate::quantity::{Farad, Joule, Kelvin, Volt};

/// Thermal energy `k_B · T`.
///
/// # Example
///
/// ```
/// use se_units::{temperature::thermal_energy, Kelvin};
/// let kt = thermal_energy(Kelvin(300.0));
/// assert!((kt.to_electronvolt() - 0.02585).abs() < 1e-3);
/// ```
#[must_use]
pub fn thermal_energy(temperature: Kelvin) -> Joule {
    Joule(BOLTZMANN * temperature.0)
}

/// Thermal voltage `k_B · T / e` (≈ 25.85 mV at 300 K).
#[must_use]
pub fn thermal_voltage(temperature: Kelvin) -> Volt {
    Volt(BOLTZMANN * temperature.0 / E)
}

/// Single-electron charging energy `E_C = e² / (2 · CΣ)` of an island with
/// total capacitance `c_total`.
///
/// # Panics
///
/// Panics if `c_total` is not strictly positive — a zero-capacitance island
/// has no well-defined electrostatics and indicates a malformed circuit.
#[must_use]
pub fn charging_energy(c_total: Farad) -> Joule {
    assert!(
        c_total.0 > 0.0,
        "island total capacitance must be positive, got {c_total}"
    );
    Joule(E * E / (2.0 * c_total.0))
}

/// Maximum temperature at which Coulomb blockade remains observable for an
/// island with total capacitance `c_total`, requiring
/// `E_C >= margin · k_B · T`.
///
/// The conventional engineering margin is 10 (oscillations visible) to 40
/// (logic-grade on/off ratio).
///
/// # Panics
///
/// Panics if `margin` is not strictly positive or `c_total` is not strictly
/// positive.
#[must_use]
pub fn max_operating_temperature(c_total: Farad, margin: f64) -> Kelvin {
    assert!(margin > 0.0, "margin must be positive, got {margin}");
    let ec = charging_energy(c_total);
    Kelvin(ec.0 / (margin * BOLTZMANN))
}

/// Island total capacitance required to keep Coulomb blockade observable at
/// `temperature` with the given `margin` (inverse of
/// [`max_operating_temperature`]).
///
/// # Panics
///
/// Panics if `temperature` or `margin` is not strictly positive.
#[must_use]
pub fn required_capacitance(temperature: Kelvin, margin: f64) -> Farad {
    assert!(temperature.0 > 0.0, "temperature must be positive");
    assert!(margin > 0.0, "margin must be positive");
    Farad(E * E / (2.0 * margin * BOLTZMANN * temperature.0))
}

/// Rough island diameter (in metres) of a sphere with self-capacitance equal
/// to `capacitance` in vacuum: `C = 4πε₀·r` ⇒ `d = C / (2πε₀)`.
///
/// This is the back-of-the-envelope link between "aF capacitance" and
/// "few-nanometre structure" quoted in the paper.
#[must_use]
pub fn equivalent_island_diameter(capacitance: Farad) -> f64 {
    const EPSILON_0: f64 = 8.854_187_812_8e-12;
    capacitance.0 / (2.0 * std::f64::consts::PI * EPSILON_0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = thermal_voltage(Kelvin(300.0));
        assert!((vt.0 - 0.02585).abs() < 2e-4);
    }

    #[test]
    fn charging_energy_of_one_attofarad() {
        // e²/2C for C = 1 aF is ~80 meV.
        let ec = charging_energy(Farad(1e-18));
        assert!((ec.to_electronvolt() - 0.0801).abs() < 2e-3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn charging_energy_rejects_zero_capacitance() {
        let _ = charging_energy(Farad(0.0));
    }

    #[test]
    fn room_temperature_operation_needs_sub_attofarad_islands() {
        // Requiring E_C >= 10 kT at 300 K demands CΣ below ~0.31 aF.
        let c = required_capacitance(Kelvin(300.0), 10.0);
        assert!(c.0 < 0.35e-18, "required capacitance {c}");
        assert!(c.0 > 0.2e-18, "required capacitance {c}");
        // ...which corresponds to a structure of a few nanometres.
        let d = equivalent_island_diameter(c);
        assert!(d < 10e-9, "diameter {d} m should be in the nm regime");
    }

    #[test]
    fn max_temperature_and_required_capacitance_are_inverse() {
        let c = Farad(0.5e-18);
        let t = max_operating_temperature(c, 20.0);
        let c_back = required_capacitance(t, 20.0);
        assert!((c_back.0 - c.0).abs() / c.0 < 1e-12);
    }

    #[test]
    fn millikelvin_operation_allowed_for_femtofarad_islands() {
        let t = max_operating_temperature(Farad(1e-15), 10.0);
        assert!(t.0 < 1.0, "1 fF islands only work below 1 K, got {t}");
    }
}
