//! Background-charge immunity: level-coded versus FM-coded SET logic.
//!
//! Reproduces the paper's central argument in miniature: a level-coded SET
//! inverter is corrupted by random background charges, while a gate that
//! codes its output in the oscillation *frequency* is immune, because
//! background charge only shifts the phase of the periodic characteristic.
//!
//! Run with `cargo run --example background_charge_logic`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use single_electronics::logic::amfm::{
    fm_coded_bit_error_rate, level_coded_bit_error_rate, FmCodedGate,
};
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inverter = SetInverter::reference()?;
    let fm_gate = FmCodedGate::reference()?;
    let mut rng = StdRng::seed_from_u64(42);

    let mut table = Table::new(
        "Bit-error rate vs background-charge disorder amplitude (uniform in [-q0, q0])",
        &["q0 max [e]", "level-coded BER", "FM-coded BER"],
    );
    for &q0_max in &[0.05, 0.1, 0.2, 0.3, 0.5] {
        let level = level_coded_bit_error_rate(&inverter, &mut rng, q0_max, 60)?;
        let fm = fm_coded_bit_error_rate(&fm_gate, &mut rng, q0_max, 16)?;
        table.add_row(&[
            format!("{q0_max:.2}"),
            format!("{level:.3}"),
            format!("{fm:.3}"),
        ]);
    }
    println!("{table}");
    println!(
        "The FM-coded gate pays for its immunity with speed: it integrates {} oscillation periods per decision.",
        fm_gate.expected_cycles().1
    );
    Ok(())
}
