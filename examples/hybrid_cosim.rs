//! Hybrid co-simulation: Monte-Carlo islands inside a SPICE circuit.
//!
//! The paper's Section 4 argues for combining SPICE-level and Monte-Carlo
//! simulation. This example loads a SET whose drain is fed through a 10 MΩ
//! resistor, lets the co-simulator partition the netlist, and sweeps the
//! gate to show the output voltage oscillating — the circuit-level face of
//! the Coulomb oscillations, computed with the detailed physics where it
//! matters and cheap nodal analysis everywhere else.
//!
//! Run with `cargo run --example hybrid_cosim`.

use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let period = E / 1e-18;
    let mut table = Table::new(
        "SET + 10 MΩ load, 5 mV supply: output voltage vs gate voltage",
        &["Vg / period", "V(drain) [mV]", "iterations"],
    );
    for i in 0..=16 {
        let vg = 1.5 * period * i as f64 / 16.0;
        let deck = format!(
            "hybrid set load\nVDD vdd 0 5m\nVG gate 0 {vg}\nRL vdd drain 10meg\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n"
        );
        let netlist = se_netlist::parse_deck(&deck)?;
        let solution = HybridSimulator::new(&netlist, HybridOptions::new(1.0))?.solve()?;
        table.add_row(&[
            format!("{:.3}", vg / period),
            format!(
                "{:.4}",
                solution.boundary_voltage("drain").unwrap_or(f64::NAN) * 1e3
            ),
            solution.iterations().to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}
