//! The merged SET/MOSFET multiple-valued literal gate (Inokawa et al.).
//!
//! Builds the two-device circuit — an NMOS constant-current load in series
//! with a SET whose gate is the input — as a netlist, solves it with the
//! SPICE engine and prints the periodic, multiple-valued transfer curve that
//! would require many transistors to build in pure CMOS.
//!
//! Run with `cargo run --example mvl_quantizer`.

use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = MvlGate::reference();
    let period = gate.input_period();
    println!("input period (e/Cg): {:.2} mV", period * 1e3);

    let curve = gate.transfer_curve(0.0, 3.0 * period, 61)?;
    let mut table = Table::new(
        "SET/MOSFET literal gate transfer curve (3 input periods)",
        &["Vin / period", "Vout [mV]"],
    );
    for (v_in, v_out) in &curve {
        table.add_row(&[
            format!("{:.3}", v_in / period),
            format!("{:.3}", v_out * 1e3),
        ]);
    }
    println!("{table}");

    let plateaus = MvlGate::count_plateaus(&curve, 0.1 * gate.supply);
    println!("distinct output plateaus over 3 periods: {plateaus}");
    println!("(a single conventional MOSFET produces exactly one)");
    Ok(())
}
