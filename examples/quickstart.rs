//! Quickstart: the Coulomb oscillations of a single SET.
//!
//! Builds the reference single-electron transistor, sweeps its gate over two
//! oscillation periods at a small drain bias and prints the periodic Id–Vg
//! characteristic — the device behaviour every other experiment in this
//! repository builds on.
//!
//! Run with `cargo run --example quickstart`.

use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference SET: 1 aF gate capacitance, 0.5 aF junctions, 100 kΩ tunnel
    // resistances. Charging energy ≈ 40 meV, so 1 K is deep in the quantum
    // regime.
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3)?;
    let period = set.gate_period();
    println!("gate period e/Cg      : {:.3} mV", period * 1e3);
    println!(
        "charging energy e²/2CΣ: {:.1} meV",
        set.charging_energy() / E * 1e3
    );
    println!(
        "max operating T (10x) : {:.0} K",
        set.max_operating_temperature(10.0)
    );
    println!();

    let mut table = Table::new(
        "Coulomb oscillations: Id(Vg) at Vds = 1 mV, T = 1 K",
        &["Vg / period", "Id [nA]"],
    );
    let sweep = set.gate_sweep(1e-3, 0.0, 2.0 * period, 33, 0.0, 1.0)?;
    for point in &sweep {
        table.add_row(&[
            format!("{:.3}", point.vgs / period),
            format!("{:.4}", point.current * 1e9),
        ]);
    }
    println!("{table}");

    // The same device, now with a background charge of 0.3 e: the peaks
    // shift by 0.3 periods but keep their height — the paper's key
    // observation.
    let shifted = set.gate_sweep(1e-3, 0.0, 2.0 * period, 33, 0.3, 1.0)?;
    let max_clean = sweep.iter().map(|p| p.current).fold(f64::MIN, f64::max);
    let max_shifted = shifted.iter().map(|p| p.current).fold(f64::MIN, f64::max);
    println!(
        "peak current without background charge: {:.4} nA",
        max_clean * 1e9
    );
    println!(
        "peak current with q0 = 0.3 e           : {:.4} nA  (amplitude unchanged)",
        max_shifted * 1e9
    );
    Ok(())
}
