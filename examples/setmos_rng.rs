//! The SET/CMOS random-number generator (Uchida et al.).
//!
//! Generates a bitstream from amplified single-electron telegraph noise,
//! runs the randomness battery on it, and prints the power/area comparison
//! against a conventional CMOS generator — the "seven orders of magnitude
//! less power, eight orders of magnitude smaller area" claim of the paper.
//!
//! Run with `cargo run --example setmos_rng`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use single_electronics::logic::noise::TelegraphNoiseSource;
use single_electronics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measure the telegraph-noise RMS first.
    let mut source = TelegraphNoiseSource::reference()?;
    let mut rng = StdRng::seed_from_u64(7);
    let trace = source.sample_trace(&mut rng, 5e-6, 4000)?;
    let rms = TelegraphNoiseSource::rms_noise(&trace);
    println!("amplified telegraph-noise RMS: {rms:.3} V (paper: 0.12 V)");

    // Generate bits and test them.
    let mut generator = SetMosRng::reference()?;
    let bits = generator.generate(&mut rng, 4096)?;
    let report = RandomnessReport::evaluate(&bits)?;
    let mut table = Table::new(
        "Randomness battery (4096 bits)",
        &["test", "statistic", "passed"],
    );
    table.add_row(&[
        "monobit".into(),
        format!("{:+.3}", report.monobit.statistic),
        report.monobit.passed.to_string(),
    ]);
    table.add_row(&[
        "runs".into(),
        format!("{:+.3}", report.runs.statistic),
        report.runs.passed.to_string(),
    ]);
    table.add_row(&[
        "serial correlation".into(),
        format!("{:+.4}", report.serial_correlation.statistic),
        report.serial_correlation.passed.to_string(),
    ]);
    table.add_row(&[
        "block chi-squared".into(),
        format!("{:.2}", report.block_chi_squared.statistic),
        report.block_chi_squared.passed.to_string(),
    ]);
    println!("{table}");

    // Power / area comparison against the CMOS baseline.
    let comparison = RngComparison::with_measured_noise(rms);
    let mut table = Table::new("SET/CMOS RNG vs CMOS RNG", &["quantity", "value"]);
    table.add_row(&[
        "power advantage".into(),
        format!(
            "{:.1} orders of magnitude",
            comparison.power_orders_of_magnitude()
        ),
    ]);
    table.add_row(&[
        "area advantage".into(),
        format!(
            "{:.1} orders of magnitude",
            comparison.area_orders_of_magnitude()
        ),
    ]);
    table.add_row(&[
        "noise advantage".into(),
        format!(
            "{:.1} orders of magnitude",
            comparison.noise_orders_of_magnitude()
        ),
    ]);
    println!("{table}");
    Ok(())
}
