//! The batched-ensemble contract: a `BatchedKmcEngine` replica is not
//! "statistically equivalent" to a standalone simulator — it is the *same
//! walk*, bit for bit.
//!
//! The lockstep engine shares seeds, goldens and tests with the scalar
//! `MonteCarloSimulator` because replica `k` (seeded with
//! `derive_seed(base, k)`) must reproduce the standalone run exactly:
//! every waiting time, every chosen event, every cached potential. These
//! tests pin that contract over random circuits, replica counts, event
//! budgets and temperatures — including `T = 0`, where whole batches
//! freeze — plus a dedicated test that frozen replicas retire without
//! stalling or corrupting the lanes still running.

use proptest::prelude::*;
use single_electronics::engine::derive_seed;
use single_electronics::montecarlo::{BatchedKmcEngine, MonteCarloSimulator, SimulationOptions};
use single_electronics::netlist::parse_full_deck;
use single_electronics::numeric::sampling::ln_unit;
use single_electronics::orthodox::{TunnelSystem, TunnelSystemBuilder};
use single_electronics::sim::{compile, execute_with_options, ExecOptions};

/// A randomly parameterised island chain (drain — islands — source, each
/// island optionally gated), the same shape the incremental-hot-path
/// proptests use: chain junctions keep the capacitance matrix
/// non-singular for every draw.
#[derive(Debug, Clone)]
struct RandomCircuit {
    junction_caps: Vec<f64>,
    junction_resistances: Vec<f64>,
    gate_caps: Vec<Option<f64>>,
    backgrounds: Vec<f64>,
    vds: f64,
    vg: f64,
    temperature: f64,
}

impl RandomCircuit {
    fn build(&self) -> TunnelSystem {
        let islands = self.gate_caps.len();
        let mut b = TunnelSystemBuilder::new();
        let drain = b.external("drain", self.vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", self.vg);
        let mut previous = drain;
        for i in 0..islands {
            let island = b.island(format!("i{i}"), self.backgrounds[i]);
            b.junction(
                format!("J{i}"),
                previous,
                island,
                self.junction_caps[i],
                self.junction_resistances[i],
            );
            if let Some(cg) = self.gate_caps[i] {
                b.capacitor(format!("Cg{i}"), gate, island, cg);
            }
            previous = island;
        }
        b.junction(
            format!("J{islands}"),
            previous,
            source,
            *self.junction_caps.last().unwrap(),
            *self.junction_resistances.last().unwrap(),
        );
        b.build().expect("chain circuits are always non-singular")
    }
}

/// Strategy producing random 1–3-island chains with a temperature drawn
/// from the regimes the engine distinguishes: exactly zero (frozen-only
/// kernels), deep cryogenic (thermal-window patching) and warm.
#[derive(Debug)]
struct ArbCircuit;

impl Strategy for ArbCircuit {
    type Value = RandomCircuit;

    fn sample(&self, rng: &mut proptest::TestRng) -> RandomCircuit {
        let islands = 1 + rng.below(3) as usize;
        let temperature_regime = rng.below(4);
        let mut range = |lo: f64, hi: f64| lo + rng.unit_f64() * (hi - lo);
        let junction_caps = (0..islands).map(|_| range(0.1e-18, 2.0e-18)).collect();
        let junction_resistances = (0..islands).map(|_| range(50e3, 500e3)).collect();
        let gate_caps = (0..islands)
            .map(|_| {
                let cg = range(0.0, 1.5e-18);
                (cg > 0.5e-18).then_some(cg)
            })
            .collect();
        let backgrounds = (0..islands).map(|_| range(-1.0, 1.0)).collect();
        let temperature = match temperature_regime {
            0 => 0.0,
            1 => range(0.05, 0.5),
            _ => range(0.5, 4.2),
        };
        RandomCircuit {
            junction_caps,
            junction_resistances,
            gate_caps,
            backgrounds,
            vds: range(-0.1, 0.1),
            vg: range(-0.2, 0.2),
            temperature,
        }
    }
}

/// Runs `replicas` lanes batched and the same replicas standalone, then
/// asserts replica `k` of the batch is bit-identical to the scalar
/// simulator seeded with `derive_seed(base_seed, k)`: executed events,
/// total simulated time (to the bit), final charge state, net junction
/// transfers and the frozen flag.
fn assert_batch_matches_standalone(
    system: &TunnelSystem,
    temperature: f64,
    base_seed: u64,
    replicas: usize,
    equilibration: usize,
    events: usize,
) {
    let options = SimulationOptions::new(temperature).with_equilibration(equilibration);
    let mut batch = BatchedKmcEngine::from_base_seed(system.clone(), options, replicas, base_seed)
        .expect("valid batch");
    let batch_results = batch.run_events_all(events).expect("batched run succeeds");
    assert_eq!(batch_results.len(), replicas);
    for (k, batch_result) in batch_results.iter().enumerate() {
        let mut scalar = MonteCarloSimulator::new(
            system.clone(),
            SimulationOptions::new(temperature)
                .with_equilibration(equilibration)
                .with_seed(derive_seed(base_seed, k as u64)),
        )
        .expect("valid scalar simulator");
        let scalar_result = scalar.run_events(events).expect("scalar run succeeds");
        assert_eq!(
            batch_result.events(),
            scalar_result.events(),
            "replica {k}: event counts diverged"
        );
        assert_eq!(
            batch_result.total_time().to_bits(),
            scalar_result.total_time().to_bits(),
            "replica {k}: simulated time diverged (batched {} vs scalar {})",
            batch_result.total_time(),
            scalar_result.total_time()
        );
        assert_eq!(
            batch.time(k).to_bits(),
            scalar.time().to_bits(),
            "replica {k}: clock diverged"
        );
        assert_eq!(
            &batch.state(k),
            scalar.state(),
            "replica {k}: final charge state diverged"
        );
        assert_eq!(
            batch.net_transfers(k),
            scalar.net_transfers(),
            "replica {k}: junction transfer counters diverged"
        );
        assert_eq!(
            batch.is_frozen(k),
            scalar.is_frozen(),
            "replica {k}: frozen flags diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over random circuits, temperatures (including exactly zero),
    /// replica counts, equilibration prefixes and event budgets, every
    /// batch lane reproduces its standalone scalar walk bit for bit.
    #[test]
    fn prop_batched_replicas_are_bit_identical_to_standalone_runs(
        circuit in ArbCircuit,
        replicas in 1_usize..7,
        events in 1_usize..250,
        equilibrate in 0_usize..2,
        base_seed in 0_u64..1_000_000,
    ) {
        let system = circuit.build();
        assert_batch_matches_standalone(
            &system,
            circuit.temperature,
            base_seed,
            replicas,
            equilibrate * 16,
            events,
        );
    }
}

/// Distance in units-in-the-last-place between two finite same-sign
/// doubles (their IEEE-754 bit patterns are order-isomorphic there).
fn ulp_distance(a: f64, b: f64) -> u64 {
    let (a, b) = (a.to_bits() as i64, b.to_bits() as i64);
    a.abs_diff(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The deterministic event-clock kernel tracks the platform libm to
    /// ≤ 2 ulp over the whole open unit interval — uniformly dense draws
    /// plus draws pushed toward the underflow boundary, where the range
    /// reduction works hardest.
    #[test]
    fn prop_ln_unit_stays_within_two_ulp_of_libm(
        mantissa in 0.0_f64..1.0,
        scale_exp in 0_i32..300,
    ) {
        // u spans (0, 1] across ~300 binades, not just the dense top one.
        let u = (mantissa + f64::MIN_POSITIVE) * 2.0_f64.powi(-scale_exp);
        prop_assume!(u > 0.0 && u <= 1.0);
        let kernel = ln_unit(u);
        let libm = u.ln();
        prop_assert!(
            ulp_distance(kernel, libm) <= 2,
            "ln_unit({u:e}) = {kernel:e} vs libm {libm:e} ({} ulp apart)",
            ulp_distance(kernel, libm)
        );
    }
}

/// A `repeats=` ensemble staircase deck over the reference SET.
fn ensemble_deck(seed: u64, temperature: f64, repeats: usize) -> String {
    format!(
        "lane-width identity\n\
         VD drain 0 0\n\
         VG gate 0 0\n\
         J1 drain island C=0.5a R=100k\n\
         J2 island 0 C=0.5a R=100k\n\
         CG gate island 1a\n\
         .options temp={temperature:?} seed={seed} engine=kmc events=600 repeats={repeats}\n\
         .dc VD 0 0.06 0.02\n\
         .print dc i(J1)\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The published ensemble tables are byte-identical across lane
    /// widths, worker counts and the per-seed scalar fallback: replica
    /// `k` of a point is always the same walk, however the replicas are
    /// grouped into work items.
    #[test]
    fn prop_ensemble_tables_are_identical_across_lane_widths(
        seed in 0_u64..1_000_000,
        temperature in 0.05_f64..4.2,
        repeats in 1_usize..9,
        widths in proptest::collection::vec(1_usize..12, 2),
    ) {
        let deck = parse_full_deck(&ensemble_deck(seed, temperature, repeats)).unwrap();
        let plan = compile(&deck).unwrap();
        let run = |lane_width: Option<usize>, scalar: bool| {
            execute_with_options(&deck, &plan, &ExecOptions {
                lane_width,
                scalar_ensemble: scalar,
                ..ExecOptions::default()
            })
            .expect("ensemble deck runs")
        };
        let baseline = run(None, false);
        for &width in &widths {
            prop_assert_eq!(&run(Some(width), false), &baseline, "width {}", width);
        }
        // The scalar fallback (under an arbitrary grouping) matches too.
        prop_assert_eq!(&run(Some(widths[0]), true), &baseline);
    }
}

/// Builds a relaxation-only circuit: zero bias, zero temperature, but
/// gated islands whose ground state holds electrons. Starting from the
/// neutral state, each replica fires a few downhill tunnel events in a
/// seed-dependent order and then freezes — lanes retire at different
/// steps, which is exactly the partial-retirement regime the batch front
/// must survive.
fn relaxing_system() -> TunnelSystem {
    let mut b = TunnelSystemBuilder::new();
    let drain = b.external("drain", 0.0);
    let source = b.external("source", 0.0);
    let gate = b.external("gate", 0.35);
    let a = b.island("a", 0.0);
    let c = b.island("c", 0.0);
    b.junction("J0", drain, a, 0.5e-18, 100e3);
    b.junction("J1", a, c, 0.5e-18, 100e3);
    b.junction("J2", c, source, 0.5e-18, 100e3);
    b.capacitor("CgA", gate, a, 2.0e-18);
    b.capacitor("CgC", gate, c, 2.0e-18);
    b.build().expect("valid relaxation fixture")
}

/// Frozen replicas retire from the lockstep front without stalling the
/// batch or perturbing the still-running lanes, and every retired lane
/// still matches its standalone walk bit for bit.
#[test]
fn frozen_replicas_retire_without_stalling_the_batch() {
    let system = relaxing_system();
    let replicas = 8;
    let budget = 500;
    let options = SimulationOptions::new(0.0).with_equilibration(0);
    let mut batch = BatchedKmcEngine::from_base_seed(system.clone(), options, replicas, 11)
        .expect("valid batch");
    let results = batch.run_events_all(budget).expect("run completes");

    // At T = 0 the relaxation cascade is finite: every lane must have
    // frozen well short of the budget (the run returned instead of
    // spinning on retired lanes), after at least one downhill event.
    for (k, result) in results.iter().enumerate() {
        assert!(batch.is_frozen(k), "replica {k} should have frozen");
        assert!(
            result.events() > 0 && result.events() < budget as u64,
            "replica {k} should freeze mid-budget, executed {}",
            result.events()
        );
    }

    // A frozen batch is quiescent: stepping it again advances nothing.
    let advanced = batch
        .step_all()
        .expect("stepping a frozen batch is a no-op");
    assert_eq!(advanced, 0, "no lane should advance after retirement");

    // Retirement must not have corrupted any lane: each one, replayed
    // standalone with the same derived seed, lands on the same state.
    assert_batch_matches_standalone(&system, 0.0, 11, replicas, 0, budget);
}
