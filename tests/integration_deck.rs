//! Integration suite of the deck-driven pipeline: golden multi-engine runs
//! of the reference decks in `examples/decks/`, plus the serialization
//! round-trip property (deck → text → deck → identical plan).

use proptest::prelude::*;
use single_electronics::netlist::directive::{Analysis, AnalysisOptions, Deck, SweepSpec};
use single_electronics::netlist::{parse_full_deck, Element, EnginePreference, Netlist, Node};
use single_electronics::sim::{compile, execute, execute_serial, run_deck, EngineChoice};

fn example_deck(name: &str) -> String {
    let path = format!("{}/../../examples/decks/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Runs the reference staircase deck with the given engine override and
/// returns the `(VD, I(J1))` pairs.
fn staircase_currents(engine: EnginePreference) -> Vec<(f64, f64)> {
    let mut deck = parse_full_deck(&example_deck("set_staircase.cir")).expect("deck parses");
    deck.options.engine = engine;
    let plan = compile(&deck).expect("deck compiles");
    let results = execute(&deck, &plan).expect("deck runs");
    assert_eq!(results.len(), 1);
    let vd = results[0].column("VD").expect("VD column");
    let current = results[0].column("I(J1)").expect("I(J1) column");
    vd.into_iter().zip(current).collect()
}

/// The acceptance requirement: `sesim examples/decks/set_staircase.cir`
/// semantics end to end, with the same deck forced onto the analytic,
/// master-equation and kinetic Monte-Carlo backends — no Rust circuit
/// construction anywhere, and mutual agreement within stated tolerances.
#[test]
fn staircase_deck_agrees_across_analytic_master_and_kmc() {
    let master = staircase_currents(EnginePreference::Master);
    let analytic = staircase_currents(EnginePreference::Analytic);
    let kmc = staircase_currents(EnginePreference::Kmc);
    assert_eq!(master.len(), 51);
    assert_eq!(analytic.len(), 51);
    assert_eq!(kmc.len(), 51);

    // Golden staircase shape (the gate sits at the blockade point): no
    // current below the ~40 mV Coulomb threshold, conduction above ~56 mV,
    // and a monotonically rising envelope.
    let peak = master.last().expect("non-empty sweep").1;
    assert!(peak > 1e-8, "staircase must reach tens of nA, got {peak}");
    for &(vd, current) in &master {
        if vd < 0.04 {
            assert!(
                current.abs() < 1e-12,
                "blockade must hold at {vd} V, got {current}"
            );
        }
        if vd > 0.056 {
            assert!(
                current > 1e-9,
                "conduction must be open at {vd} V, got {current}"
            );
        }
    }

    // Mutual agreement: the analytic birth–death solution tracks the full
    // master equation within 5 %, the 40 000-event KMC estimate within
    // 15 %, on every conducting point (absolute floor 1 pA below that).
    for (((vd, i_master), (_, i_analytic)), (_, i_kmc)) in master.iter().zip(&analytic).zip(&kmc) {
        let scale = i_master.abs();
        if scale < 1e-12 {
            assert!(
                i_analytic.abs() < 1e-12 && i_kmc.abs() < 1e-12,
                "blockade point {vd} V must be dark on every engine"
            );
            continue;
        }
        let analytic_rel = (i_analytic - i_master).abs() / scale;
        assert!(
            analytic_rel < 0.05,
            "analytic vs master at {vd} V: {i_analytic} vs {i_master} ({analytic_rel:.3})"
        );
        let kmc_rel = (i_kmc - i_master).abs() / scale;
        assert!(
            kmc_rel < 0.15,
            "kmc vs master at {vd} V: {i_kmc} vs {i_master} ({kmc_rel:.3})"
        );
    }
}

/// Deck execution is deterministic and scheduling-independent: the
/// stochastic KMC backend produces bit-identical tables serial vs
/// parallel, and reruns reproduce exactly.
#[test]
fn deck_execution_is_bit_identical_serial_vs_parallel() {
    let mut deck = parse_full_deck(&example_deck("set_staircase.cir")).expect("deck parses");
    deck.options.engine = EnginePreference::Kmc;
    deck.options.kmc_events = Some(5_000);
    let plan = compile(&deck).expect("deck compiles");
    let parallel = execute(&deck, &plan).expect("parallel run");
    let serial = execute_serial(&deck, &plan).expect("serial run");
    assert_eq!(parallel, serial);
    let again = execute(&deck, &plan).expect("rerun");
    assert_eq!(parallel, again);
}

/// The stability-map deck compiles to a 2-D master-equation run whose
/// long-format table shows Coulomb diamonds: dark at the charge-degeneracy
/// drain axis crossings, conducting at large drain bias.
#[test]
fn stability_map_deck_produces_coulomb_diamonds() {
    let run = run_deck(&example_deck("stability_map.cir")).expect("deck runs");
    assert_eq!(run.results[0].engine(), "master-equation");
    let rows = run.results[0].rows();
    assert_eq!(rows.len(), 21 * 21);
    // Columns are [VG, VD, I(J1)] (outer axis first).
    assert_eq!(
        run.results[0].columns(),
        &["VG".to_string(), "VD".into(), "I(J1)".into()]
    );
    // Blockade at (VG = 0, VD = 0) — the first diamond's centre column.
    let dark = rows
        .iter()
        .find(|row| row[0] == 0.0 && row[1] == 0.0)
        .expect("origin point");
    assert!(
        dark[2].abs() < 1e-12,
        "origin must be blockaded: {}",
        dark[2]
    );
    // Conduction at the largest drain bias of the map.
    let bright = rows.iter().map(|row| row[2].abs()).fold(0.0_f64, f64::max);
    assert!(bright > 1e-8, "diamond edges must conduct, got {bright}");
}

/// The pulse-train deck auto-selects the KMC clock and the window-averaged
/// junction current follows the drive with a visible on/off contrast.
#[test]
fn pulse_train_deck_follows_the_drive_through_kmc() {
    let run = run_deck(&example_deck("pulse_train.cir")).expect("deck runs");
    let result = &run.results[0];
    assert_eq!(result.engine(), "kinetic-monte-carlo");
    assert_eq!(run.plan.runs[0].engine, EngineChoice::Kmc);
    let times = result.column("t").expect("t column");
    let current = result.column("I(J1)").expect("I(J1) column");
    assert_eq!(times.len(), 17);
    // Pulses occupy [20, 60) and [100, 140) ns; drives act on the window
    // ending at each sample, so samples 2..=6 and 10..=14 are "on".
    let on: f64 = [2_usize, 3, 4, 5, 10, 11, 12, 13]
        .iter()
        .map(|&i| current[i])
        .sum::<f64>()
        / 8.0;
    let off = current[8].abs().max(current[16].abs());
    assert!(on > 3.0 * off.max(1e-12), "on {on} vs off {off}");
}

/// The hybrid MVL-gate deck partitions into a master-equation island
/// behind a SPICE MOSFET load; the plan rationale names the bridge, and
/// the swept input shows the SET's Coulomb oscillation through the
/// co-simulated boundary.
#[test]
fn hybrid_mvl_deck_names_its_bridge_and_oscillates() {
    let run = run_deck(&example_deck("hybrid_mvl_gate.cir")).expect("deck runs");
    let result = &run.results[0];
    assert_eq!(result.engine(), "hybrid-cosim");
    let rationale = &run.plan.runs[0].rationale;
    assert!(rationale.contains("`out`"), "{rationale}");
    assert!(rationale.contains("`M1`"), "{rationale}");
    let current = result.column("I(J1)").expect("I(J1) column");
    // Coulomb oscillation over two periods: conducting near the two
    // degeneracy inputs (~80 mV and ~240 mV), blockaded at 0 and 160 mV.
    assert!(current[5].abs() > 1e-8, "first peak: {}", current[5]);
    assert!(current[15].abs() > 1e-8, "second peak: {}", current[15]);
    assert!(current[0].abs() < 1e-12, "blockade at 0: {}", current[0]);
    assert!(
        current[10].abs() < 1e-12,
        "blockade mid-period: {}",
        current[10]
    );
}

/// The pure-SPICE deck runs on the Newton engine and reports source branch
/// currents.
#[test]
fn mosfet_deck_runs_on_the_spice_engine() {
    let run = run_deck(&example_deck("mosfet_follower.cir")).expect("deck runs");
    let result = &run.results[0];
    assert_eq!(result.engine(), "spice-dc");
    assert_eq!(
        result.columns(),
        &["VIN".to_string(), "I(VDD)".into(), "I(VIN)".into()]
    );
    // The follower turns on once VIN clears the threshold: supply current
    // grows by orders of magnitude across the sweep.
    let supply = result.column("I(VDD)").expect("I(VDD) column");
    assert!(supply[0].abs() < 1e-9);
    assert!(supply.last().expect("rows").abs() > 1e-6);
}

/// Builds the reference-style SET deck programmatically (no text).
#[allow(clippy::too_many_arguments)]
fn programmatic_deck(
    c_gate: f64,
    c_junction: f64,
    resistance: f64,
    vd: f64,
    sweep_stop: f64,
    points: usize,
    seed: u64,
    temperature: f64,
    engine: EnginePreference,
) -> Deck {
    let mut netlist = Netlist::new("programmatic SET deck");
    let drain = netlist.node("drain");
    let island = netlist.node("island");
    let gate = netlist.node("gate");
    netlist
        .add(Element::voltage_source("VD", drain, Node::GROUND, vd))
        .unwrap();
    netlist
        .add(Element::voltage_source("VG", gate, Node::GROUND, 0.0))
        .unwrap();
    netlist
        .add(Element::tunnel_junction(
            "J1", drain, island, c_junction, resistance,
        ))
        .unwrap();
    netlist
        .add(Element::tunnel_junction(
            "J2",
            island,
            Node::GROUND,
            c_junction,
            resistance,
        ))
        .unwrap();
    netlist
        .add(Element::capacitor("CG", gate, island, c_gate))
        .unwrap();
    Deck {
        netlist,
        analyses: vec![Analysis::DcSweep {
            sweep: SweepSpec {
                source: "VG".into(),
                start: 0.0,
                stop: sweep_stop,
                points,
            },
        }],
        options: AnalysisOptions {
            temperature,
            seed,
            engine,
            ..AnalysisOptions::default()
        },
        probes: vec!["J1".into()],
        waveforms: Vec::new(),
        diagnostics: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The satellite requirement: a programmatically built deck serialized
    /// to `.cir` text and re-parsed compiles to an *identical* simulation
    /// plan — the deck text is a faithful, lossless job format.
    #[test]
    fn prop_deck_serialization_round_trips_to_the_same_plan(
        c_gate_af in 0.5_f64..2.0,
        c_junction_af in 0.3_f64..1.0,
        resistance_kohm in 60.0_f64..500.0,
        vd_mv in 0.2_f64..2.0,
        sweep_stop_mv in 50.0_f64..400.0,
        points in 2_usize..64,
        seed in 0_u64..1_000_000,
        temperature in 0.5_f64..4.2,
        engine_pick in 0_usize..3,
    ) {
        let engine = [
            EnginePreference::Auto,
            EnginePreference::Master,
            EnginePreference::Kmc,
        ][engine_pick];
        let deck = programmatic_deck(
            c_gate_af * 1e-18,
            c_junction_af * 1e-18,
            resistance_kohm * 1e3,
            vd_mv * 1e-3,
            sweep_stop_mv * 1e-3,
            points,
            seed,
            temperature,
            engine,
        );
        let text = deck.to_deck_string();
        let reparsed = parse_full_deck(&text).expect("serialized deck parses");
        prop_assert!(reparsed.diagnostics.is_empty(), "{:?}", reparsed.diagnostics);
        prop_assert_eq!(reparsed.analyses.clone(), deck.analyses.clone());
        prop_assert_eq!(reparsed.options.clone(), deck.options.clone());
        let original_plan = compile(&deck).expect("original deck compiles");
        let reparsed_plan = compile(&reparsed).expect("re-parsed deck compiles");
        prop_assert_eq!(original_plan, reparsed_plan);
    }
}
