//! Integration tests of the unified engine layer: the kinetic Monte-Carlo
//! engine, the master-equation solver and the analytic SET model all
//! implement [`StationaryEngine`] and run through the same parallel
//! [`SweepRunner`], with bit-identical serial and parallel results.

use single_electronics::montecarlo::{MasterEquation, MonteCarloSimulator, SimulationOptions};
use single_electronics::prelude::*;

fn reference_system(vds: f64) -> TunnelSystem {
    let mut builder = TunnelSystemBuilder::new();
    let island = builder.island("island", 0.0);
    let drain = builder.external("drain", vds);
    let source = builder.external("source", 0.0);
    let gate = builder.external("gate", 0.0);
    builder.junction("JD", drain, island, 0.5e-18, 100e3);
    builder.junction("JS", island, source, 0.5e-18, 100e3);
    builder.capacitor("CG", gate, island, 1e-18);
    builder.build().expect("valid reference system")
}

/// The satellite requirement: one test driving all three engine families
/// through the same trait surface on the same physical device, with the
/// same control/observable names, asserting the currents agree.
#[test]
fn three_engine_families_agree_through_the_stationary_engine_trait() {
    let vds = 1e-3;
    let temperature = 1.0;
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
    let period = set.gate_period();
    let gate_values = [0.25 * period, 0.5 * period, 0.75 * period];

    // The three engines, all behind the one trait.
    let analytic = set
        .stationary_engine(temperature, 0.0)
        .unwrap()
        .with_bias(vds, 0.0);
    let master = MasterEquation::new(reference_system(vds), temperature).unwrap();
    let kmc = MonteCarloSimulator::new(
        reference_system(vds),
        SimulationOptions::new(temperature).with_events_per_solve(60_000),
    )
    .unwrap();

    let runner = SweepRunner::new().with_seed(11);
    let reference = runner.run(&analytic, "gate", &gate_values, "JD").unwrap();
    let exact = runner.run(&master, "gate", &gate_values, "JD").unwrap();
    let sampled = runner.run(&kmc, "gate", &gate_values, "JD").unwrap();

    for ((r, m), k) in reference.iter().zip(&exact).zip(&sampled) {
        let scale = r.current.abs().max(1e-15);
        assert!(
            (m.current - r.current).abs() < 0.03 * scale,
            "master vs analytic at Vg = {}: {} vs {}",
            r.control,
            m.current,
            r.current
        );
        assert!(
            (k.current - r.current).abs() < 0.15 * scale,
            "kmc vs analytic at Vg = {}: {} vs {}",
            r.control,
            k.current,
            r.current
        );
    }
}

/// Serial and parallel execution of the same stochastic sweep must be
/// bit-identical: per-point seeds depend only on `(sweep seed, index)`.
#[test]
fn serial_and_parallel_kmc_sweeps_are_bit_identical() {
    let temperature = 1.0;
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
    let period = set.gate_period();
    let values = single_electronics::engine::linspace(0.1 * period, 0.9 * period, 9).unwrap();

    let kmc = MonteCarloSimulator::new(
        reference_system(1e-3),
        SimulationOptions::new(temperature).with_events_per_solve(4_000),
    )
    .unwrap();

    let parallel = SweepRunner::new()
        .with_seed(42)
        .run(&kmc, "gate", &values, "JD")
        .unwrap();
    let serial = SweepRunner::new()
        .with_seed(42)
        .serial()
        .run(&kmc, "gate", &values, "JD")
        .unwrap();
    assert_eq!(parallel, serial, "scheduling must never change results");

    // And a different sweep seed gives a different stochastic stream.
    let reseeded = SweepRunner::new()
        .with_seed(43)
        .run(&kmc, "gate", &values, "JD")
        .unwrap();
    assert_ne!(parallel, reseeded);
}

/// The 2-D stability map runs through the same runner, parallel across all
/// grid points, and is identical to the serial path for the deterministic
/// master-equation engine too.
#[test]
fn stability_maps_are_deterministic_and_structured() {
    let temperature = 1.0;
    let period = se_units::constants::E / 1e-18;
    let master = MasterEquation::new(reference_system(0.0), temperature).unwrap();

    let gate_values = [0.0, 0.5 * period];
    let drain_values = single_electronics::engine::linspace(-0.15, 0.15, 11).unwrap();
    let runner = SweepRunner::new();
    let map = runner
        .stability_map(&master, "gate", &gate_values, "drain", &drain_values, "JD")
        .unwrap();
    let map_serial = runner
        .serial()
        .stability_map(&master, "gate", &gate_values, "drain", &drain_values, "JD")
        .unwrap();
    assert_eq!(map, map_serial);

    // Blockade at the gate valley around zero bias, conduction at the
    // degeneracy point — the diamond structure.
    assert_eq!(map.outer_values().len(), 2);
    assert_eq!(map.inner_values().len(), 11);
    assert!(map.at(0, 5).abs() < 1e-15);
    assert!(map.at(0, 0).abs() > 1e-12);
    assert!(map.at(1, 0).abs() > 1e-12);
}

/// The SPICE DC engine speaks the same trait: sweep a SET-compact-model
/// circuit's gate source and watch the supply current oscillate with the
/// gate period.
#[test]
fn spice_dc_engine_joins_the_unified_surface() {
    let period = se_units::constants::E / 1e-18;
    let deck = "set with load\nVDD vdd 0 5m\nVG g 0 0\nRL vdd out 10meg\nX1 out g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n";
    let netlist = se_netlist::parse_deck(deck).unwrap();
    let engine = SpiceDcEngine::new(Circuit::new(&netlist).unwrap(), NewtonOptions::default());

    let values = single_electronics::engine::linspace(0.0, period, 21).unwrap();
    let sweep = SweepRunner::new()
        .run(&engine, "VG", &values, "VDD")
        .unwrap();
    // Supply current is largest in magnitude when the SET conducts (gate at
    // half period) and smallest at the blockade points.
    let at = |idx: usize| sweep[idx].current.abs();
    assert!(at(10) > 2.0 * at(0), "peak {} vs valley {}", at(10), at(0));
    let serial = SweepRunner::new()
        .serial()
        .run(&engine, "VG", &values, "VDD")
        .unwrap();
    assert_eq!(sweep, serial);
}
