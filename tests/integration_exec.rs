//! Integration tests of the `se-exec` job substrate through the deck
//! pipeline: the PR-5 acceptance surface.
//!
//! * serial ≡ parallel ≡ chunked ≡ checkpoint-interrupt-then-resume, all
//!   bit-identical, across random chunk sizes, seeds and backends
//!   (analytic / master equation / kinetic Monte-Carlo);
//! * a golden byte-for-byte CSV snapshot of one streamed sweep;
//! * a killed checkpointed run (simulated by tearing the manifest the way
//!   `kill -9` between chunk completions would) resumes to the exact
//!   uninterrupted tables.

use proptest::prelude::*;
use single_electronics::exec::{
    run_collect, CancelToken, CheckpointStore, JobBuilder, JobSpec, Workers,
};
use single_electronics::netlist::parse_full_deck;
use single_electronics::sim::{
    compile, execute, execute_serial, execute_with_options, ExecOptions,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A process-unique scratch directory.
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "se-integration-exec-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference SET staircase deck with a configurable grid, seed and
/// engine.
fn staircase_deck(seed: u64, points: usize, engine: &str) -> String {
    let stop = 0.16_f64;
    let step = stop / (points - 1) as f64;
    format!(
        "staircase battery\n\
         VD drain 0 1m\n\
         VG gate 0 0\n\
         J1 drain island C=0.5a R=100k\n\
         J2 island 0 C=0.5a R=100k\n\
         CG gate island 1a\n\
         .options temp=1 seed={seed} engine={engine} events=2000\n\
         .dc VG 0 {stop:?} {step:?}\n\
         .print dc i(J1)\n"
    )
}

/// The golden snapshot: one streamed 5-point analytic staircase sweep.
/// The bytes pin the whole streaming path — header naming, shortest
/// round-trip float rendering, row order — so any substrate change that
/// perturbs the CSV stream fails loudly.
#[test]
fn golden_csv_snapshot_for_a_streamed_sweep() {
    let deck = parse_full_deck(&staircase_deck(7, 5, "analytic")).unwrap();
    let plan = compile(&deck).unwrap();
    let dir = temp_dir("golden");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("golden.csv");
    let options = ExecOptions {
        csv: Some(csv_path.to_string_lossy().into_owned()),
        ..ExecOptions::default()
    };
    let results = execute_with_options(&deck, &plan, &options).unwrap();
    let streamed = std::fs::read_to_string(&csv_path).unwrap();
    // The streamed file and the post-hoc export are byte-identical.
    assert_eq!(streamed, results[0].to_csv());
    assert_eq!(streamed, GOLDEN_STAIRCASE_CSV, "streamed CSV drifted");
    let _ = std::fs::remove_dir_all(&dir);
}

const GOLDEN_STAIRCASE_CSV: &str = "VG,I(J1)\n\
0.0,1.6391455383601426e-205\n\
0.04,1.5719188825929312e-107\n\
0.08,1.6788561471429485e-9\n\
0.12,1.784714178493118e-104\n\
0.16,5.763631269422553e-205\n";

/// Tears a checkpoint the way a mid-flight kill would: keep the manifest
/// header plus the first `keep` chunk lines. (Chunk payload files may
/// remain — unlisted chunks must be ignored on resume.)
fn tear_manifest(checkpoint_root: &PathBuf, keep: usize) {
    let job_dir = std::fs::read_dir(checkpoint_root)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().is_dir())
        .expect("one job directory")
        .path();
    let manifest = job_dir.join("manifest.txt");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let kept: Vec<&str> = text.lines().take(1 + keep).collect();
    std::fs::write(&manifest, format!("{}\n", kept.join("\n"))).unwrap();
}

/// The headline acceptance: a checkpointed run killed mid-flight resumes
/// to tables — and a streamed CSV — bit-identical to the uninterrupted
/// run.
#[test]
fn torn_checkpoint_resumes_to_identical_tables_and_csv() {
    let deck = parse_full_deck(&staircase_deck(11, 12, "master")).unwrap();
    let plan = compile(&deck).unwrap();
    let baseline = execute(&deck, &plan).unwrap();

    let dir = temp_dir("torn");
    let checkpoint = dir.join("ck");
    std::fs::create_dir_all(&dir).unwrap();

    // Full checkpointed run (12 points, chunk 2 → 6 chunks), then tear the
    // manifest back to 2 completed chunks.
    let options = ExecOptions {
        chunk: Some(2),
        checkpoint: Some(checkpoint.clone()),
        ..ExecOptions::default()
    };
    let first = execute_with_options(&deck, &plan, &options).unwrap();
    assert_eq!(first, baseline);
    tear_manifest(&checkpoint, 2);

    // Resume from the torn state, streaming a CSV on the way.
    let csv_path = dir.join("resumed.csv");
    let resumed = execute_with_options(
        &deck,
        &plan,
        &ExecOptions {
            chunk: Some(2),
            checkpoint: Some(checkpoint),
            resume: true,
            csv: Some(csv_path.to_string_lossy().into_owned()),
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed, baseline, "resume must be bit-identical");
    let streamed = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(streamed, baseline[0].to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against an *edited* deck — same analysis directive, same grid,
/// different circuit — must be refused (the checkpoint carries a deck
/// fingerprint), never silently restore the old circuit's currents.
/// And a failed resume must not destroy a previous CSV export.
#[test]
fn resume_against_an_edited_deck_is_refused_and_preserves_exports() {
    let text = staircase_deck(5, 8, "master");
    let deck = parse_full_deck(&text).unwrap();
    let plan = compile(&deck).unwrap();
    let dir = temp_dir("edited");
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("ck");
    let csv_path = dir.join("out.csv");
    let options = ExecOptions {
        checkpoint: Some(checkpoint.clone()),
        csv: Some(csv_path.to_string_lossy().into_owned()),
        ..ExecOptions::default()
    };
    let first = execute_with_options(&deck, &plan, &options).unwrap();
    let exported = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(exported, first[0].to_csv());

    // Edit a junction capacitance: identical geometry, different physics.
    let edited = parse_full_deck(&text.replace("C=0.5a", "C=0.6a")).unwrap();
    let edited_plan = compile(&edited).unwrap();
    let err = execute_with_options(
        &edited,
        &edited_plan,
        &ExecOptions {
            resume: true,
            ..options
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("different job"), "{err}");
    // The old export survives the refused run untouched.
    assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), exported);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cooperative cancellation at the deck level: a pre-fired token stops the
/// run before any chunk completes, and the checkpointed resume still
/// reproduces the baseline.
#[test]
fn cancelled_deck_runs_resume_cleanly() {
    let deck = parse_full_deck(&staircase_deck(3, 9, "master")).unwrap();
    let plan = compile(&deck).unwrap();
    let baseline = execute_serial(&deck, &plan).unwrap();

    let dir = temp_dir("cancel");
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = execute_with_options(
        &deck,
        &plan,
        &ExecOptions {
            checkpoint: Some(dir.clone()),
            cancel: Some(cancel),
            ..ExecOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("cancelled"), "{err}");

    let resumed = execute_with_options(
        &deck,
        &plan,
        &ExecOptions {
            checkpoint: Some(dir.clone()),
            resume: true,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert_eq!(resumed, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant at the deck level: chunked ≡ unchunked ≡
    /// serial ≡ checkpointed-and-resumed, bit for bit, across random chunk
    /// sizes, seeds and all three island backends.
    #[test]
    fn prop_all_execution_modes_are_bit_identical(
        seed in 0_u64..1_000_000,
        chunk in 1_usize..9,
        points in 5_usize..14,
        engine_pick in 0_usize..3,
    ) {
        let engine = ["analytic", "master", "kmc"][engine_pick];
        let deck = parse_full_deck(&staircase_deck(seed, points, engine)).unwrap();
        let plan = compile(&deck).unwrap();

        let serial = execute_serial(&deck, &plan).unwrap();
        let parallel = execute(&deck, &plan).unwrap();
        prop_assert_eq!(&serial, &parallel);

        let chunked = execute_with_options(&deck, &plan, &ExecOptions {
            chunk: Some(chunk),
            workers: Workers::Count(3),
            ..ExecOptions::default()
        }).unwrap();
        prop_assert_eq!(&serial, &chunked);

        // Checkpoint the run, tear the manifest to one completed chunk,
        // resume — still identical.
        let dir = temp_dir("prop");
        let options = ExecOptions {
            chunk: Some(chunk),
            checkpoint: Some(dir.clone()),
            ..ExecOptions::default()
        };
        let checkpointed = execute_with_options(&deck, &plan, &options).unwrap();
        prop_assert_eq!(&serial, &checkpointed);
        tear_manifest(&dir, 1);
        let resumed = execute_with_options(&deck, &plan, &ExecOptions {
            resume: true,
            ..options
        }).unwrap();
        prop_assert_eq!(&serial, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Warm-started master sweeps are schedule-independent: for every
    /// stationary solver choice, the streamed CSV bytes and the collected
    /// tables are identical across serial, parallel, chunked and
    /// torn-checkpoint-resumed runs, and the solver-effort ledger shows
    /// exactly one cold start per warm block.
    #[test]
    fn prop_master_warm_sweeps_are_deterministic(
        seed in 0_u64..1_000_000,
        points in 9_usize..28,
        chunk in 1_usize..5,
        workers in 2_usize..5,
        solver_pick in 0_usize..3,
    ) {
        let solver = ["krylov", "krylov-jacobi", "gauss-seidel"][solver_pick];
        let text = staircase_deck(seed, points, "master")
            .replace("engine=master", &format!("engine=master solver={solver}"));
        let deck = parse_full_deck(&text).unwrap();
        let plan = compile(&deck).unwrap();

        let dir = temp_dir("warm");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_for = |tag: &str, options: ExecOptions| {
            let path = dir.join(format!("{tag}.csv"));
            let options = ExecOptions {
                csv: Some(path.to_string_lossy().into_owned()),
                ..options
            };
            let results = execute_with_options(&deck, &plan, &options).unwrap();
            (results, std::fs::read_to_string(&path).unwrap())
        };

        let (serial, serial_csv) = csv_for("serial", ExecOptions {
            workers: Workers::Serial,
            ..ExecOptions::default()
        });
        let (parallel, parallel_csv) = csv_for("parallel", ExecOptions {
            workers: Workers::Count(workers),
            ..ExecOptions::default()
        });
        let (chunked, chunked_csv) = csv_for("chunked", ExecOptions {
            workers: Workers::Count(workers),
            chunk: Some(chunk),
            ..ExecOptions::default()
        });
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &chunked);
        prop_assert_eq!(&serial_csv, &parallel_csv, "parallel CSV bytes drifted");
        prop_assert_eq!(&serial_csv, &chunked_csv, "chunked CSV bytes drifted");

        // Tear a checkpointed run back to one completed chunk and resume.
        let checkpoint = dir.join("ck");
        let options = ExecOptions {
            chunk: Some(chunk),
            checkpoint: Some(checkpoint.clone()),
            ..ExecOptions::default()
        };
        let checkpointed = execute_with_options(&deck, &plan, &options).unwrap();
        prop_assert_eq!(&serial, &checkpointed);
        tear_manifest(&checkpoint, 1);
        let (resumed, resumed_csv) = csv_for("resumed", ExecOptions {
            resume: true,
            ..options
        });
        prop_assert_eq!(&serial, &resumed);
        prop_assert_eq!(&serial_csv, &resumed_csv, "resumed CSV bytes drifted");

        // Every fully-computed run reports the configured solver and one
        // cold start per warm block; the rest of the points warm-start.
        let blocks = points.div_ceil(single_electronics::sim::MASTER_WARM_BLOCK);
        for result in [&serial, &parallel, &chunked] {
            let effort = result[0].solver_effort().expect("master sweeps report effort");
            let name_matches = match solver {
                "krylov" => effort.solver == "bicgstab-ilu0",
                "krylov-jacobi" => effort.solver == "bicgstab-jacobi",
                _ => effort.solver == "gauss-seidel",
            } || effort.solver == "gauss-seidel(fallback)" || effort.solver == "mixed";
            prop_assert!(name_matches, "solver={} reported {}", solver, effort.solver);
            prop_assert_eq!(effort.solves, points);
            prop_assert_eq!(effort.warm_solves, points - blocks);
        }
        let configured = match solver {
            "krylov" => "bicgstab-ilu0",
            "krylov-jacobi" => "bicgstab-jacobi",
            _ => "gauss-seidel",
        };
        prop_assert_eq!(
            serial[0].metadata().iter().find(|(k, _)| k == "solver").map(|(_, v)| v.as_str()),
            Some(configured)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The substrate-level half: a *deterministically* interrupted job
    /// (cancelled at a random solve count under serial scheduling) resumes
    /// bit-identically, whatever the chunking.
    #[test]
    fn prop_substrate_interrupt_resume_is_bit_identical(
        seed in 0_u64..1_000_000,
        chunk in 1_usize..9,
        items in 10_usize..40,
        cancel_at in 0_usize..40,
    ) {
        let solve = |i: usize, s: u64| Ok::<_, std::io::Error>(vec![i as f64, f64::from_bits(s)]);
        let spec = JobSpec::new(items).with_seed(seed).with_chunk(chunk).serial();
        let baseline = run_collect(&spec, &mut (), solve).unwrap();

        let dir = temp_dir("sub");
        let store = CheckpointStore::new(&dir);
        let cancel = CancelToken::new();
        let solved = AtomicUsize::new(0);
        let mut no_sink = ();
        let job = JobBuilder::new(spec)
            .collect()
            .checkpoint(&store, "prop", false)
            .build(&mut no_sink, |i, s| {
                if solved.fetch_add(1, Ordering::SeqCst) == cancel_at {
                    cancel.cancel();
                }
                solve(i, s)
            })
            .unwrap();
        single_electronics::exec::run_batch(&[&job], Workers::Serial, &cancel);
        let interrupted = job.finish();

        let mut still_no_sink = ();
        let job = JobBuilder::new(spec)
            .collect()
            .checkpoint(&store, "prop", true)
            .build(&mut still_no_sink, solve)
            .unwrap();
        single_electronics::exec::run_batch(&[&job], Workers::Serial, &CancelToken::new());
        let (resumed, report) = job.finish().unwrap();
        // Compare raw bit patterns: the seed column can hold NaNs, and the
        // claim really is *bit*-identity, not float equality.
        let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
            rows.iter()
                .map(|row| row.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        prop_assert_eq!(bits(&resumed), bits(&baseline));
        prop_assert_eq!(report.restored + report.computed, items);
        if interrupted.is_err() {
            // A genuine interruption must have left something to restore
            // whenever at least one whole chunk completed first.
            let whole_chunks_before_cancel = cancel_at / chunk;
            if whole_chunks_before_cancel > 0 {
                prop_assert!(report.restored > 0);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// NaN payloads survive the checkpoint codec bit-exactly (the classic
/// round-trip killer for decimal serialization).
#[test]
fn checkpointed_nan_bit_patterns_round_trip() {
    let weird = f64::from_bits(0x7ff8_dead_beef_0001); // a payloaded NaN
    let solve = move |i: usize, _s: u64| {
        Ok::<_, std::io::Error>(vec![if i == 3 { weird } else { i as f64 }])
    };
    let dir = temp_dir("nan");
    let store = CheckpointStore::new(&dir);
    let spec = JobSpec::new(8).with_chunk(2);
    let mut no_sink = ();
    let job = JobBuilder::new(spec)
        .collect()
        .checkpoint(&store, "nan", false)
        .build(&mut no_sink, solve)
        .unwrap();
    single_electronics::exec::run_batch(&[&job], Workers::Auto, &CancelToken::new());
    job.finish().unwrap();

    let mut still_no_sink = ();
    let job = JobBuilder::new(spec)
        .collect()
        .checkpoint(&store, "nan", true)
        .build(
            &mut still_no_sink,
            |_, _| -> Result<Vec<f64>, std::io::Error> {
                panic!("everything must be restored, nothing recomputed")
            },
        )
        .unwrap();
    single_electronics::exec::run_batch(&[&job], Workers::Auto, &CancelToken::new());
    let (restored, report) = job.finish().unwrap();
    assert_eq!(report.restored, 8);
    assert_eq!(restored[3][0].to_bits(), weird.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}
