//! Smoke tests of the application-level experiments: each of the paper's
//! quantitative claims is exercised end-to-end at reduced size so the full
//! pipeline (physics → simulators → applications) stays wired together.

use rand::rngs::StdRng;
use rand::SeedableRng;
use single_electronics::logic::amfm::{FmCodedGate, GateSpeedModel};
use single_electronics::logic::noise::TelegraphNoiseSource;
use single_electronics::logic::power::power_comparison;
use single_electronics::orthodox::cotunneling::blockade_leakage_ratio;
use single_electronics::prelude::*;

#[test]
fn e1_oscillation_period_and_phase() {
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
    let period = set.gate_period();
    // Period is e/Cg.
    assert!((period - E / 1e-18).abs() < 1e-9 * period);
    // Phase shifts with q0, amplitude does not: a background charge of q0 is
    // exactly a gate shift of q0·(e/Cg), so compare point-by-point.
    let q0 = 0.37;
    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let clean = set.current(1e-3, (frac + q0) * period, 0.0, 1.0).unwrap();
        let shifted = set.current(1e-3, frac * period, q0, 1.0).unwrap();
        let scale = clean.abs().max(shifted.abs()).max(1e-18);
        assert!(
            (clean - shifted).abs() < 1e-6 * scale,
            "phase-shift equivalence failed at {frac}: {clean} vs {shifted}"
        );
    }
}

#[test]
fn e4_e5_temperature_and_gain_tradeoff() {
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
    // Modulation washes out with temperature.
    let cold = set.modulation_depth(1e-4, 0.0, 4.0).unwrap();
    let hot = set.modulation_depth(1e-4, 0.0, 300.0).unwrap();
    assert!(cold > hot);
    // Raising Cg/Cj raises the gain but lowers the operating temperature.
    let high_gain = SingleElectronTransistor::symmetric(4e-18, 0.5e-18, 100e3).unwrap();
    assert!(high_gain.voltage_gain() > set.voltage_gain());
    assert!(high_gain.max_operating_temperature(10.0) < set.max_operating_temperature(10.0));
}

#[test]
fn e6_fm_gate_is_immune_to_worst_case_disorder() {
    let gate = FmCodedGate::reference().unwrap();
    for q0 in [-0.5, -0.1, 0.2, 0.5] {
        assert!(!gate.evaluate(false, q0).unwrap());
        assert!(gate.evaluate(true, q0).unwrap());
    }
}

#[test]
fn e8_rng_bits_pass_the_battery_and_comparison_holds() {
    let mut generator = SetMosRng::reference().unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let bits = generator.generate(&mut rng, 2048).unwrap();
    let report = RandomnessReport::evaluate(&bits).unwrap();
    assert!(report.monobit.passed);
    let mut source = TelegraphNoiseSource::reference().unwrap();
    let trace = source.sample_trace(&mut rng, 5e-6, 2000).unwrap();
    let comparison = RngComparison::with_measured_noise(TelegraphNoiseSource::rms_noise(&trace));
    assert!(comparison.power_orders_of_magnitude() > 6.0);
    assert!(comparison.area_orders_of_magnitude() > 7.0);
}

#[test]
fn e9_power_advantage_of_set_logic() {
    let set_model = single_electronics::logic::power::SetLogicPowerModel::reference().unwrap();
    let cmos_model = CmosPowerModel::inverter_180nm();
    let rows = power_comparison(&set_model, &cmos_model, &[1e6, 1e9]).unwrap();
    assert!(rows.iter().all(|row| row.ratio > 1e3));
}

#[test]
fn e11_cotunneling_dominates_sequential_leakage_in_blockade() {
    let charging_energy = 5e-21;
    let low_r = blockade_leakage_ratio(
        2.0 * RESISTANCE_QUANTUM,
        charging_energy,
        0.1 * charging_energy,
        1.0,
    )
    .unwrap();
    let high_r = blockade_leakage_ratio(
        200.0 * RESISTANCE_QUANTUM,
        charging_energy,
        0.1 * charging_energy,
        1.0,
    )
    .unwrap();
    assert!(low_r > high_r);
}

#[test]
fn e12_fm_logic_is_slower_but_still_gigahertz_class() {
    let model = GateSpeedModel {
        tunnel_resistance: 100e3,
        drive_energy: 5e-21,
        tunnel_events_per_period: 4.0,
    };
    assert!(model.tunnel_time() < 1e-12);
    assert!(model.gate_delay(8) > model.gate_delay(1));
    assert!(model.max_clock_frequency(8) > 1e9);
}
