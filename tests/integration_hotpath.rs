//! Validation of the incremental physics core against full recomputation,
//! plus a golden regression pinning the three stationary engines to the
//! Coulomb-staircase characteristic.
//!
//! The incremental hot path (`LiveState` + `RateContext`) replaces a dense
//! potential solve per event with axpy corrections; these tests are the
//! contract that the shortcut is exact: over random circuits, random event
//! walks and random drive changes, cached potentials and per-event ΔF must
//! match the from-scratch computation to 1e-12 relative.

use proptest::prelude::*;
use single_electronics::montecarlo::{
    MasterEquation, MonteCarloSimulator, SimulationOptions, StationarySolver,
};
use single_electronics::orthodox::live::{LiveState, RateContext};
use single_electronics::orthodox::set::SingleElectronTransistor;
use single_electronics::orthodox::{
    tunnel_rate, BatchedEventRateTable, BatchedLiveState, BatchedRateContext, ChargeState,
    EventRateTable, TunnelSystem, TunnelSystemBuilder,
};

/// A randomly parameterised island chain: every island couples to the
/// previous endpoint (lead for the first) through a tunnel junction, plus
/// an optional gate capacitor, which keeps the capacitance matrix
/// non-singular for every parameter draw.
#[derive(Debug, Clone)]
struct RandomCircuit {
    junction_caps: Vec<f64>,
    junction_resistances: Vec<f64>,
    gate_caps: Vec<Option<f64>>,
    backgrounds: Vec<f64>,
    vds: f64,
    vg: f64,
}

impl RandomCircuit {
    fn build(&self) -> TunnelSystem {
        let islands = self.gate_caps.len();
        let mut b = TunnelSystemBuilder::new();
        let drain = b.external("drain", self.vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", self.vg);
        let mut previous = drain;
        for i in 0..islands {
            let island = b.island(format!("i{i}"), self.backgrounds[i]);
            b.junction(
                format!("J{i}"),
                previous,
                island,
                self.junction_caps[i],
                self.junction_resistances[i],
            );
            if let Some(cg) = self.gate_caps[i] {
                b.capacitor(format!("Cg{i}"), gate, island, cg);
            }
            previous = island;
        }
        b.junction(
            format!("J{islands}"),
            previous,
            source,
            *self.junction_caps.last().unwrap(),
            *self.junction_resistances.last().unwrap(),
        );
        b.build().expect("chain circuits are always non-singular")
    }
}

/// Strategy producing random 1–4-island chain circuits.
#[derive(Debug)]
struct ArbCircuit;

impl Strategy for ArbCircuit {
    type Value = RandomCircuit;

    fn sample(&self, rng: &mut proptest::TestRng) -> RandomCircuit {
        let islands = 1 + rng.below(4) as usize;
        let mut range = |lo: f64, hi: f64| lo + rng.unit_f64() * (hi - lo);
        let junction_caps = (0..islands).map(|_| range(0.1e-18, 2.0e-18)).collect();
        let junction_resistances = (0..islands).map(|_| range(50e3, 500e3)).collect();
        let gate_caps = (0..islands)
            .map(|_| {
                let cg = range(0.0, 1.5e-18);
                // A third of the islands go ungated — the chain junctions
                // keep the capacitance matrix non-singular regardless.
                (cg > 0.5e-18).then_some(cg)
            })
            .collect();
        let backgrounds = (0..islands).map(|_| range(-1.0, 1.0)).collect();
        RandomCircuit {
            junction_caps,
            junction_resistances,
            gate_caps,
            backgrounds,
            vds: range(-0.05, 0.05),
            vg: range(-0.2, 0.2),
        }
    }
}

fn assert_live_matches_full(system: &TunnelSystem, live: &LiveState, temperature: f64) {
    let exact = system.island_potentials(live.state());
    for (cached, full) in live.potentials().iter().zip(&exact) {
        assert!(
            (cached - full).abs() <= 1e-12 * full.abs().max(1e-9),
            "potential drifted: cached {cached} vs full {full}"
        );
    }
    let ctx = RateContext::new(system, temperature).unwrap();
    let mut rates = Vec::new();
    ctx.fill_rates(system, live, &mut rates);
    for (idx, event) in system.events().into_iter().enumerate() {
        let df_incremental = live.delta_free_energy(system, event);
        let df_full = system.delta_free_energy(live.state(), event);
        assert!(
            (df_incremental - df_full).abs() <= 1e-12 * df_full.abs().max(1e-25),
            "ΔF drifted for event {idx}: incremental {df_incremental} vs full {df_full}"
        );
        let rate_full = tunnel_rate(df_full, system.event_resistance(event), temperature).unwrap();
        let scale = rate_full.abs().max(1e-6);
        assert!(
            (rates[idx] - rate_full).abs() <= 1e-9 * scale,
            "rate drifted for event {idx}: table {} vs full {rate_full}",
            rates[idx]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over random circuits, random starting states and random event walks,
    /// the incremental potentials and ΔF match the full recomputation to
    /// 1e-12.
    #[test]
    fn prop_incremental_matches_full_recompute_over_event_walks(
        circuit in ArbCircuit,
        start in proptest::collection::vec(-2_i64..=2, 4..=4),
        walk in proptest::collection::vec(0_usize..10_000, 1..200),
    ) {
        let islands = circuit.gate_caps.len();
        let system = circuit.build();
        let state = ChargeState(start[..islands].to_vec());
        let mut live = LiveState::new(&system, state);
        for &step in &walk {
            let event = system.event(step % system.event_count());
            live.apply(&system, event);
        }
        assert_live_matches_full(&system, &live, 1.0);
    }

    /// Drive-voltage and background-charge changes folded in by
    /// `LiveState::sync` match a from-scratch rebuild to 1e-12.
    #[test]
    fn prop_incremental_matches_full_recompute_over_drive_changes(
        circuit in ArbCircuit,
        voltages in proptest::collection::vec(-0.1_f64..0.1, 8..=8),
        backgrounds in proptest::collection::vec(-0.5_f64..0.5, 4..=4),
        walk in proptest::collection::vec(0_usize..10_000, 0..50),
    ) {
        let islands = circuit.gate_caps.len();
        let mut system = circuit.build();
        let mut live = LiveState::new(&system, ChargeState::neutral(islands));
        for (i, chunk) in voltages.chunks(2).enumerate() {
            // Alternate voltage changes with event applications and
            // background-charge moves — the three mutation paths the sync
            // machinery must fold in.
            system.set_external_voltage(i % 3, chunk[0]).unwrap();
            live.sync(&system);
            if let Some(&w) = walk.get(i) {
                let event = system.event(w % system.event_count());
                live.apply(&system, event);
            }
            system
                .set_background_charge(i % islands, backgrounds[i % backgrounds.len()])
                .unwrap();
            live.sync(&system);
        }
        assert_live_matches_full(&system, &live, 4.2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental event-rate table against the reference fill: over
    /// random circuits, temperatures and event walks, a refill boundary
    /// (full potential refresh + table sync — the cadence `LiveState`
    /// re-synchronizes on) reproduces `RateContext::fill_rates` bit for
    /// bit. Between refills the axpy-maintained rates may differ from a
    /// fresh fill in final ulps; at every refill they must not differ at
    /// all.
    #[test]
    fn prop_event_table_refill_matches_fill_rates_bit_for_bit(
        circuit in ArbCircuit,
        temperature_index in 0usize..4,
        walk in proptest::collection::vec(0_usize..10_000, 1..300),
    ) {
        let temperature = [0.0, 0.1, 1.0, 4.2][temperature_index];
        let islands = circuit.gate_caps.len();
        let system = circuit.build();
        let ctx = RateContext::new(&system, temperature).unwrap();
        let mut live = LiveState::new(&system, ChargeState::neutral(islands));
        let mut table = EventRateTable::new(&system, &ctx, &live);
        for &step in &walk {
            let event = system.event(step % system.event_count());
            live.apply(&system, event);
            table.apply_event(&system, &ctx, &live, event);
        }
        live.refresh(&system);
        prop_assert!(table.sync(&system, &ctx, &live), "refresh must trigger a refill");
        let mut rates = Vec::new();
        ctx.fill_rates(&system, &live, &mut rates);
        for (index, &rate) in rates.iter().enumerate() {
            prop_assert_eq!(
                table.rate(index).to_bits(),
                rate.to_bits(),
                "event {} diverged at the refill boundary",
                index
            );
        }
    }

    /// The batched lane tables under interleaved per-lane walks: lane `k`
    /// stays bit-identical to a standalone scalar table fed the same event
    /// sequence (rates *and* maintained ΔF), and every lane's refill
    /// boundary reproduces the scalar `fill_rates` of its charge state bit
    /// for bit.
    #[test]
    fn prop_batched_lane_table_refills_match_fill_rates_bit_for_bit(
        circuit in ArbCircuit,
        temperature_index in 0usize..3,
        walk in proptest::collection::vec(0_usize..10_000, 3..240),
    ) {
        let temperature = [0.1, 1.0, 4.2][temperature_index];
        let islands = circuit.gate_caps.len();
        let system = circuit.build();
        let replicas = 3;
        let batch_ctx = BatchedRateContext::new(&system, temperature, replicas).unwrap();
        let ctx = batch_ctx.context();
        let mut batch =
            BatchedLiveState::new(&system, ChargeState::neutral(islands), replicas).unwrap();
        let mut lanes: Vec<BatchedEventRateTable> = (0..replicas)
            .map(|r| BatchedEventRateTable::new(&system, ctx, &batch, r))
            .collect();
        // Scalar twin of lane 1: fed exactly the walk steps lane 1 sees.
        let mut twin_live = LiveState::new(&system, ChargeState::neutral(islands));
        let mut twin = EventRateTable::new(&system, ctx, &twin_live);
        for (i, &step) in walk.iter().enumerate() {
            let lane = i % replicas;
            let event = system.event(step % system.event_count());
            batch.apply(&system, event, lane);
            lanes[lane].apply_event(&system, ctx, &batch, event);
            if lane == 1 {
                twin_live.apply(&system, event);
                twin.apply_event(&system, ctx, &twin_live, event);
            }
        }
        for index in 0..twin.event_count() {
            prop_assert_eq!(lanes[1].rate(index).to_bits(), twin.rate(index).to_bits());
            prop_assert_eq!(lanes[1].delta_f(index).to_bits(), twin.delta_f(index).to_bits());
        }
        let mut rates = Vec::new();
        for (r, lane) in lanes.iter_mut().enumerate() {
            batch.refresh_replica(&system, r);
            prop_assert!(lane.sync(&system, ctx, &batch), "refresh must trigger a refill");
            let snapshot = LiveState::new(&system, batch.charge_state(r));
            ctx.fill_rates(&system, &snapshot, &mut rates);
            for (index, &rate) in rates.iter().enumerate() {
                prop_assert_eq!(
                    lane.rate(index).to_bits(),
                    rate.to_bits(),
                    "lane {} event {} diverged at the refill boundary",
                    r,
                    index
                );
            }
        }
    }
}

/// Frozen-cutoff reclassification mid-run: deep in Coulomb blockade at low
/// temperature, the axpy-maintained ΔF of individual events crosses the
/// frozen cutoff in both directions between refills. The table must hard-
/// zero an event the moment its ΔF exceeds the cutoff and revive it when
/// the walk brings it back — with no full refill in between — and the next
/// refill boundary must still reproduce `fill_rates` bit for bit.
#[test]
fn event_table_reclassifies_frozen_events_across_the_cutoff_mid_run() {
    let mut b = TunnelSystemBuilder::new();
    let drain = b.external("drain", 5e-3);
    let source = b.external("source", 0.0);
    let gate = b.external("gate", 0.0);
    let i0 = b.island("i0", 0.0);
    let i1 = b.island("i1", 0.0);
    b.junction("J0", drain, i0, 0.7e-18, 80e3);
    b.junction("J1", i0, i1, 0.4e-18, 120e3);
    b.junction("J2", i1, source, 0.6e-18, 90e3);
    b.capacitor("Cg0", gate, i0, 0.3e-18);
    b.capacitor("Cg1", gate, i1, 0.5e-18);
    let system = b.build().unwrap();

    let ctx = RateContext::new(&system, 0.02).unwrap();
    let mut live = LiveState::new(&system, ChargeState::neutral(2));
    let mut table = EventRateTable::new(&system, &ctx, &live);
    let mut froze = false;
    let mut thawed = false;
    let mut was_zero: Vec<bool> = (0..table.event_count())
        .map(|e| table.rate(e) == 0.0)
        .collect();
    let mut lcg = 12345_u64;
    for _ in 0..4000 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let event = system.event((lcg >> 33) as usize % system.event_count());
        live.apply(&system, event);
        table.apply_event(&system, &ctx, &live, event);
        assert!(
            !table.sync(&system, &ctx, &live),
            "no full refill may occur during the walk"
        );
        for (e, seen_zero) in was_zero.iter_mut().enumerate() {
            let zero = table.rate(e) == 0.0;
            froze |= zero && !*seen_zero;
            thawed |= !zero && *seen_zero;
            *seen_zero = zero;
        }
    }
    assert!(froze, "the walk must freeze at least one event");
    assert!(thawed, "the walk must thaw at least one frozen event");

    live.refresh(&system);
    assert!(table.sync(&system, &ctx, &live));
    let mut rates = Vec::new();
    ctx.fill_rates(&system, &live, &mut rates);
    for (index, &rate) in rates.iter().enumerate() {
        assert_eq!(
            table.rate(index).to_bits(),
            rate.to_bits(),
            "event {index} diverged at the refill boundary"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The preconditioned BiCGSTAB solver and the anchored Gauss–Seidel
    /// reference solve the same master equation: over random chain
    /// circuits, temperatures and state windows, the stationary
    /// distributions agree to 1e-10 absolutely and the junction currents
    /// to 1e-8 relative, and each solution reports its true provenance.
    #[test]
    fn prop_krylov_and_gauss_seidel_solve_the_same_master_equation(
        circuit in ArbCircuit,
        temperature in 0.5_f64..4.2,
        window in 2_i64..5,
    ) {
        let islands = circuit.gate_caps.len();
        let gauss_seidel = MasterEquation::new(circuit.build(), temperature)
            .unwrap()
            .with_window(window)
            .unwrap()
            .with_solver(StationarySolver::GaussSeidel)
            .solve()
            .unwrap();
        let krylov = MasterEquation::new(circuit.build(), temperature)
            .unwrap()
            .with_window(window)
            .unwrap()
            .solve()
            .unwrap();
        prop_assert_eq!(gauss_seidel.stats().solver, "gauss-seidel");
        prop_assert!(
            krylov.stats().solver == "bicgstab-ilu0"
                || krylov.stats().solver == "gauss-seidel(fallback)",
            "unexpected solver provenance {}", krylov.stats().solver
        );
        for (index, (p_ref, p_krylov)) in gauss_seidel
            .probabilities()
            .iter()
            .zip(krylov.probabilities())
            .enumerate()
        {
            prop_assert!(
                (p_ref - p_krylov).abs() <= 1e-10,
                "state {index}: gauss-seidel {p_ref} vs krylov {p_krylov}"
            );
        }
        for junction in (0..=islands).map(|j| format!("J{j}")) {
            let i_ref = gauss_seidel.junction_current(&junction).unwrap();
            let i_krylov = krylov.junction_current(&junction).unwrap();
            // Mixed tolerance: currents are probability differences, so a
            // near-cancelled current keeps the solvers' 1e-10 distribution
            // agreement rather than an 1e-8 relative one.
            prop_assert!(
                (i_ref - i_krylov).abs() <= 1e-8 * i_ref.abs() + 1e-18,
                "{junction}: gauss-seidel {i_ref} vs krylov {i_krylov}"
            );
        }
    }
}

/// Golden regression: the Coulomb staircase of an asymmetric double
/// junction, pinned at fixed bias points for all three engine families.
///
/// The analytic values are hard-coded from the specialised birth–death SET
/// solver (`se-orthodox::set`), whose mathematics this PR does not touch;
/// the master equation must reproduce them to 1 %, the kinetic Monte-Carlo
/// estimate to 10 %. A change in any engine's physics shows up here before
/// it shows up in an experiment harness.
#[test]
fn golden_staircase_pins_all_three_engines() {
    // E2's asymmetric staircase device: C/R asymmetry makes the steps deep.
    let cg = 1e-18;
    let (c_d, c_s) = (0.1e-18, 1.0e-18);
    let (r_d, r_s) = (1000e3, 50e3);
    let temperature = 1.0;
    // The analytic solver takes (gate, source, drain) parameter order.
    let set = SingleElectronTransistor::new(cg, c_s, c_d, r_s, r_d).unwrap();

    let build = |vds: f64| -> TunnelSystem {
        let mut b = TunnelSystemBuilder::new();
        let island = b.island("island", 0.0);
        let drain = b.external("drain", vds);
        let source = b.external("source", 0.0);
        let gate = b.external("gate", 0.0);
        b.junction("JD", drain, island, c_d, r_d);
        b.junction("JS", island, source, c_s, r_s);
        b.capacitor("CG", gate, island, cg);
        b.build().unwrap()
    };

    // (Vds, golden analytic current in ampere — regenerate with
    // `set.current(vds, 0.0, 0.0, 1.0)` if the device parameters change.)
    let golden: [(f64, f64); 4] = [
        (0.1, GOLDEN_100),
        (0.15, GOLDEN_150),
        (0.2, GOLDEN_200),
        (0.3, GOLDEN_300),
    ];
    for (vds, pinned) in golden {
        let analytic = set.current(vds, 0.0, 0.0, temperature).unwrap();
        assert!(
            (analytic - pinned).abs() <= 1e-3 * pinned.abs(),
            "analytic staircase moved at Vds = {vds}: {analytic} vs pinned {pinned}"
        );

        // The staircase at 0.3 V spreads over ~8 charge states; a wide
        // window is exactly what the sparse state space makes cheap.
        let master = MasterEquation::new(build(vds), temperature)
            .unwrap()
            .with_window(12)
            .unwrap()
            .solve()
            .unwrap()
            .junction_current("JD")
            .unwrap();
        assert!(
            (master - pinned).abs() <= 0.01 * pinned.abs(),
            "master staircase at Vds = {vds}: {master} vs pinned {pinned}"
        );

        let mut kmc =
            MonteCarloSimulator::new(build(vds), SimulationOptions::new(temperature).with_seed(7))
                .unwrap();
        let sampled = kmc
            .run_events(60_000)
            .unwrap()
            .junction_current("JD")
            .unwrap();
        assert!(
            (sampled - pinned).abs() <= 0.1 * pinned.abs(),
            "kmc staircase at Vds = {vds}: {sampled} vs pinned {pinned}"
        );
    }
}

// Golden analytic staircase currents (ampere); see the test above.
const GOLDEN_100: f64 = 5.352991434652985e-8;
const GOLDEN_150: f64 = 9.668731531978366e-8;
const GOLDEN_200: f64 = 1.4122215866572211e-7;
const GOLDEN_300: f64 = 2.3120211081667966e-7;
