//! Integration test of the hybrid co-simulator against a direct
//! self-consistent solution of the same circuit.

use single_electronics::prelude::*;

fn deck(vg: f64, load: &str) -> String {
    format!(
        "hybrid set load\nVDD vdd 0 5m\nVG gate 0 {vg}\nRL vdd drain {load}\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n"
    )
}

#[test]
fn hybrid_solution_matches_direct_load_line_intersection() {
    let set = SingleElectronTransistor::new(1e-18, 0.5e-18, 0.5e-18, 100e3, 100e3).unwrap();
    let period = set.gate_period();
    for &(vg_frac, load_ohm, load_text) in &[
        (0.5, 10e6_f64, "10meg"),
        (0.25, 1e6, "1meg"),
        (0.5, 100e3, "100k"),
    ] {
        let vg = vg_frac * period;
        let netlist = se_netlist::parse_deck(&deck(vg, load_text)).unwrap();
        let solution = HybridSimulator::new(&netlist, HybridOptions::new(1.0))
            .unwrap()
            .solve()
            .unwrap();
        assert!(solution.converged());
        let v_drain = solution.boundary_voltage("drain").unwrap();

        // Direct solution: intersect the SET I(V) with the load line by
        // bisection on the drain voltage.
        let balance = |v: f64| (5e-3 - v) / load_ohm - set.current(v, vg, 0.0, 1.0).unwrap();
        let (mut lo, mut hi) = (0.0, 5e-3);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if balance(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let direct = 0.5 * (lo + hi);
        assert!(
            (v_drain - direct).abs() < 0.05 * direct.max(1e-4),
            "load {load_text}, vg {vg_frac} periods: hybrid {v_drain} vs direct {direct}"
        );
    }
}

#[test]
fn hybrid_gate_sweep_preserves_oscillation_period() {
    let period = E / 1e-18;
    let mut outputs = Vec::new();
    for i in 0..=8 {
        let vg = 2.0 * period * i as f64 / 8.0;
        let netlist = se_netlist::parse_deck(&deck(vg, "10meg")).unwrap();
        let solution = HybridSimulator::new(&netlist, HybridOptions::new(1.0))
            .unwrap()
            .solve()
            .unwrap();
        outputs.push(solution.boundary_voltage("drain").unwrap());
    }
    // Points one full period apart (indices 0/4/8) agree.
    assert!((outputs[0] - outputs[4]).abs() < 0.05 * outputs[0].abs().max(1e-4));
    assert!((outputs[4] - outputs[8]).abs() < 0.05 * outputs[4].abs().max(1e-4));
    // And the half-period point is pulled down relative to the valleys.
    assert!(outputs[2] < outputs[0]);
}
