//! Cross-engine integration test: the kinetic Monte-Carlo engine, the
//! generic master-equation solver and the specialised single-SET reference
//! must agree on the same physical device.

use single_electronics::montecarlo::{MasterEquation, MonteCarloSimulator, SimulationOptions};
use single_electronics::orthodox::set::SingleElectronTransistor;
use single_electronics::orthodox::TunnelSystemBuilder;
use single_electronics::prelude::*;

fn reference_system(vds: f64, vg: f64) -> TunnelSystem {
    let mut builder = TunnelSystemBuilder::new();
    let island = builder.island("island", 0.0);
    let drain = builder.external("drain", vds);
    let source = builder.external("source", 0.0);
    let gate = builder.external("gate", vg);
    builder.junction("JD", drain, island, 0.5e-18, 100e3);
    builder.junction("JS", island, source, 0.5e-18, 100e3);
    builder.capacitor("CG", gate, island, 1e-18);
    builder.build().expect("valid reference system")
}

#[test]
fn three_engines_agree_on_the_coulomb_oscillation() {
    let vds = 1e-3;
    let temperature = 1.0;
    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
    let period = set.gate_period();
    let gate_values = [0.25 * period, 0.5 * period, 0.75 * period];

    // Both detailed engines behind the unified trait, one parallel runner.
    let system = reference_system(vds, 0.0);
    let runner = SweepRunner::new().with_seed(11);
    let master_engine = MasterEquation::new(system.clone(), temperature).unwrap();
    let master = runner
        .run(&master_engine, "gate", &gate_values, "JD")
        .unwrap();
    let kmc_engine = MonteCarloSimulator::new(
        system,
        SimulationOptions::new(temperature).with_events_per_solve(60_000),
    )
    .unwrap();
    let kmc = runner.run(&kmc_engine, "gate", &gate_values, "JD").unwrap();

    for ((vg, m), k) in gate_values.iter().zip(&master).zip(&kmc) {
        let reference = set.current(vds, *vg, 0.0, temperature).unwrap();
        let scale = reference.abs().max(1e-15);
        assert!(
            (m.current - reference).abs() < 0.03 * scale,
            "master vs reference at Vg = {vg}: {} vs {reference}",
            m.current
        );
        assert!(
            (k.current - reference).abs() < 0.15 * scale,
            "kmc vs reference at Vg = {vg}: {} vs {reference}",
            k.current
        );
    }
}

#[test]
fn background_charge_shifts_phase_in_every_engine() {
    let vds = 1e-3;
    let temperature = 1.0;
    let q0 = 0.4;
    let period = se_units::constants::E / 1e-18;

    // Master equation with background charge on the island...
    let mut disturbed = reference_system(vds, 0.3 * period);
    disturbed.set_background_charge(0, q0).unwrap();
    let master_disturbed =
        single_electronics::montecarlo::MasterEquation::new(disturbed, temperature)
            .unwrap()
            .solve()
            .unwrap();

    // ...equals the clean system with the gate advanced by q0 periods.
    let shifted = reference_system(vds, (0.3 + q0) * period);
    let master_shifted = single_electronics::montecarlo::MasterEquation::new(shifted, temperature)
        .unwrap()
        .solve()
        .unwrap();

    let a = master_disturbed.junction_current("JD").unwrap();
    let b = master_shifted.junction_current("JD").unwrap();
    assert!(
        (a - b).abs() < 1e-6 * a.abs().max(1e-15),
        "phase-shift equivalence: {a} vs {b}"
    );
}

#[test]
fn kmc_time_averages_are_reproducible_and_physical() {
    let period = se_units::constants::E / 1e-18;
    let system = reference_system(0.5e-3, 0.5 * period);
    let mut sim =
        MonteCarloSimulator::new(system, SimulationOptions::new(4.2).with_seed(3)).unwrap();
    let result = sim.run_events(30_000).unwrap();
    // Continuity between the two junctions.
    let i_d = result.junction_current("JD").unwrap();
    let i_s = result.junction_current("JS").unwrap();
    assert!(i_d > 0.0);
    assert!((i_d - i_s).abs() < 0.1 * i_d);
    // Island occupation fluctuates around the degeneracy value of 1/2.
    let occupation = result.mean_occupation(0).unwrap();
    assert!(
        occupation > 0.2 && occupation < 0.8,
        "occupation {occupation}"
    );
}
