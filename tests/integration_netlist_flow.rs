//! End-to-end netlist flow: parse a deck, validate it, partition it, and
//! feed the same circuit to the Monte-Carlo engine, the SPICE engine and the
//! co-simulator.

use single_electronics::montecarlo::{tunnel_system_from_netlist, MasterEquation};
use single_electronics::prelude::*;

const DECK: &str = "single SET with load
* supply and gate
VDD vdd 0 5m
VG gate 0 0.08
RL vdd drain 10meg
J1 drain island C=0.5a R=100k
J2 island 0 C=0.5a R=100k
CG gate island 1a
.end
";

#[test]
fn deck_parses_validates_and_partitions() {
    let netlist = se_netlist::parse_deck(DECK).unwrap();
    assert_eq!(netlist.len(), 6);
    netlist.validate().unwrap();
    let islands = netlist.find_islands();
    assert_eq!(islands.len(), 1);
    assert_eq!(islands[0].nodes.len(), 1);
    let split = se_netlist::partition::classify_elements(&netlist);
    assert_eq!(split.monte_carlo.len(), 3); // J1, J2, CG
    assert_eq!(split.spice.len(), 3); // VDD, VG, RL
}

#[test]
fn monte_carlo_engine_consumes_the_pure_set_part() {
    // Strip the load so every boundary node is source-driven.
    let deck = "bare SET\nVD drain 0 1m\nVG gate 0 0.08\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n";
    let netlist = se_netlist::parse_deck(deck).unwrap();
    let system = tunnel_system_from_netlist(&netlist).unwrap();
    assert_eq!(system.island_count(), 1);
    let solution = MasterEquation::new(system, 1.0).unwrap().solve().unwrap();
    let current = solution.junction_current("J1").unwrap();
    assert!(current > 0.0, "gate at e/2Cg must conduct, got {current}");
}

#[test]
fn spice_engine_consumes_the_same_topology_with_its_compact_model() {
    // The same circuit expressed with the analytic SET compact model.
    let deck = "compact SET with load\nVDD vdd 0 5m\nVG gate 0 0.08\nRL vdd drain 10meg\nX1 drain gate 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n";
    let netlist = se_netlist::parse_deck(deck).unwrap();
    let circuit = Circuit::with_temperature(&netlist, 1.0).unwrap();
    let op = circuit.dc_operating_point().unwrap();
    let v_drain_compact = op.voltage("drain").unwrap();

    // The hybrid co-simulation of the junction-level deck should land close
    // to the compact-model result at this low bias.
    let netlist = se_netlist::parse_deck(DECK).unwrap();
    let solution = HybridSimulator::new(&netlist, HybridOptions::new(1.0))
        .unwrap()
        .solve()
        .unwrap();
    let v_drain_hybrid = solution.boundary_voltage("drain").unwrap();
    assert!(
        (v_drain_compact - v_drain_hybrid).abs() < 0.25 * v_drain_hybrid.abs().max(1e-4),
        "compact {v_drain_compact} vs hybrid {v_drain_hybrid}"
    );
}

#[test]
fn malformed_decks_are_rejected_at_every_layer() {
    // Parse error.
    assert!(se_netlist::parse_deck("title\nQ1 a b 1k\n").is_err());
    // Validation error (dangling node).
    let netlist = se_netlist::parse_deck("title\nV1 a 0 1\nR1 a b 1k\n").unwrap();
    assert!(netlist.validate().is_err());
    assert!(Circuit::new(&netlist).is_err());
    assert!(HybridSimulator::new(&netlist, HybridOptions::new(1.0)).is_err());
    // No islands for the Monte-Carlo builder.
    let rc = se_netlist::parse_deck("rc\nV1 a 0 1\nR1 a 0 1k\n").unwrap();
    assert!(tunnel_system_from_netlist(&rc).is_err());
}
