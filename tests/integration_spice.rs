//! Integration tests of the SPICE engine against analytic references and
//! against the detailed single-electron model.

use single_electronics::prelude::*;
use single_electronics::spice::sweep::linspace;

#[test]
fn rc_low_pass_transient_matches_the_analytic_time_constant() {
    let netlist = se_netlist::parse_deck("rc\nV1 in 0 0\nR1 in out 10k\nC1 out 0 100p\n").unwrap();
    let circuit = Circuit::new(&netlist).unwrap();
    // Step from 0 to 1 V; tau = 1 µs.
    let stimulus = Stimulus::new().with_step("V1", 0.0, 1.0, 1e-12);
    let result = transient(&circuit, &TransientOptions::new(10e-9, 4e-6), &stimulus).unwrap();
    let out = result.node_waveform("out");
    let times = result.times();
    let idx_tau = times.iter().position(|&t| t >= 1e-6).unwrap();
    assert!(
        (out[idx_tau] - 0.632).abs() < 0.02,
        "V(tau) = {}",
        out[idx_tau]
    );
    let idx_3tau = times.iter().position(|&t| t >= 3e-6).unwrap();
    assert!(
        (out[idx_3tau] - 0.950).abs() < 0.02,
        "V(3 tau) = {}",
        out[idx_3tau]
    );
}

#[test]
fn hybrid_setmos_deck_parses_and_solves_end_to_end() {
    // A SET compact model in series with an NMOS load from a full deck.
    let period = E / 1e-18;
    let deck = format!(
        "literal gate\nVDD vdd 0 20m\nVB bias 0 0.46\nVIN in 0 {}\nM1 vdd bias out NMOS\nX1 out in 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n",
        0.5 * period
    );
    let netlist = se_netlist::parse_deck(&deck).unwrap();
    let circuit = Circuit::with_temperature(&netlist, 4.2).unwrap();
    let op = circuit.dc_operating_point().unwrap();
    let v_out = op.voltage("out").unwrap();
    assert!((-1e-3..=21e-3).contains(&v_out), "out = {v_out}");
}

#[test]
fn spice_set_model_tracks_the_detailed_model_at_low_bias_only() {
    // The compact model matches the master-equation reference at low bias
    // and undershoots at high bias (no multi-state staircase): this is the
    // documented accuracy trade-off of SPICE-level SET simulation (E10).
    let set_exact = single_electronics::orthodox::set::SingleElectronTransistor::symmetric(
        1e-18, 0.5e-18, 100e3,
    )
    .unwrap();
    let compact =
        SetAnalyticModel::new(se_netlist::SetParams::symmetric(1e-18, 0.5e-18, 100e3), 1.0);
    let period = set_exact.gate_period();

    // Low bias: agreement within 5 %.
    let vg = 0.5 * period;
    let exact_low = set_exact.current(1e-3, vg, 0.0, 1.0).unwrap();
    let compact_low = compact.drain_current(vg, 1e-3);
    assert!((exact_low - compact_low).abs() < 0.05 * exact_low.abs());

    // High bias: the compact model falls below the exact staircase current.
    let exact_high = set_exact.current(0.4, 0.0, 0.0, 1.0).unwrap();
    let compact_high = compact.drain_current(0.0, 0.4);
    assert!(compact_high < 0.8 * exact_high);
}

#[test]
fn dc_sweep_of_a_set_loaded_divider_shows_periodic_output() {
    let deck = "set divider\nVDD vdd 0 5m\nVG g 0 0\nRL vdd out 10meg\nX1 out g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n";
    let netlist = se_netlist::parse_deck(deck).unwrap();
    let circuit = Circuit::with_temperature(&netlist, 1.0).unwrap();
    let period = E / 1e-18;
    let values = linspace(0.0, 2.0 * period, 33).unwrap();
    let sweep = dc_sweep(&circuit, "VG", &values, &NewtonOptions::default()).unwrap();
    let outs = sweep.node_voltages("out");
    let max = outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = outs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max - min > 1e-3, "output must be modulated: {min}..{max}");
}
