//! Integration tests of the deterministic replay traces: the PR-7
//! acceptance surface.
//!
//! * property: record → verify round-trips clean for random decks, seeds,
//!   chunk sizes and worker counts — on both sides of the recording;
//! * property: a single injected bit flip is always detected and localized
//!   to the correct chunk, item and column, by both the trace integrity
//!   check and the re-execution diff;
//! * the committed golden trace corpus (`tests/golden/`, one directory per
//!   example deck) verifies clean against a live re-execution AND is
//!   reproduced byte-for-byte by a fresh recording — any engine or
//!   substrate change that perturbs even one output bit fails loudly.

use proptest::prelude::*;
use single_electronics::exec::Workers;
use single_electronics::netlist::parse_full_deck;
use single_electronics::sim::{compile, record_deck, verify_trace_dir, ExecOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A process-unique scratch directory.
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "se-integration-trace-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference SET staircase deck with a configurable grid, seed and
/// engine.
fn staircase_deck(seed: u64, points: usize, engine: &str) -> String {
    let stop = 0.16_f64;
    let step = stop / (points - 1) as f64;
    format!(
        "trace battery\n\
         VD drain 0 1m\n\
         VG gate 0 0\n\
         J1 drain island C=0.5a R=100k\n\
         J2 island 0 C=0.5a R=100k\n\
         CG gate island 1a\n\
         .options temp=1 seed={seed} engine={engine} events=1500\n\
         .dc VG 0 {stop:?} {step:?}\n\
         .print dc i(J1)\n"
    )
}

fn options(workers: usize, chunk: Option<usize>) -> ExecOptions {
    ExecOptions {
        workers: Workers::Count(workers),
        chunk,
        ..ExecOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Record under one (worker count, chunk size), verify under another:
    /// the verification is clean for every combination, whatever the
    /// engine — the trace is a property of the deck, not the scheduling.
    #[test]
    fn prop_record_verify_round_trips_clean(
        seed in 0u64..10_000,
        points in 3usize..24,
        engine_index in 0usize..3,
        chunk in 0usize..8,
        record_workers in 1usize..5,
        verify_workers in 1usize..5,
    ) {
        let engine = ["analytic", "master", "kmc"][engine_index];
        let chunk = (chunk > 0).then_some(chunk); // 0 = automatic chunking
        let deck = parse_full_deck(&staircase_deck(seed, points, engine)).unwrap();
        let plan = compile(&deck).unwrap();
        let dir = temp_dir("prop-clean");

        let (results, summary) =
            record_deck(&deck, &plan, &options(record_workers, chunk), &dir).unwrap();
        prop_assert_eq!(results.len(), 1);
        prop_assert_eq!(results[0].len(), points);
        prop_assert_eq!(summary.analyses.len(), 1);
        // Master sweeps schedule warm-started blocks of points as their
        // work items; the other engines keep one point per item.
        let expected_items = if engine == "master" {
            points.div_ceil(single_electronics::sim::MASTER_WARM_BLOCK)
        } else {
            points
        };
        prop_assert_eq!(summary.analyses[0].2, expected_items);

        // The verifier takes the chunk layout from the trace; only the
        // worker count varies here.
        let report = verify_trace_dir(&dir, &options(verify_workers, None)).unwrap();
        prop_assert!(report.is_clean(), "unexpected divergence: {:?}", report.analyses);
        prop_assert_eq!(report.analyses[0].items, expected_items);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip one random bit of one random recorded value: the verification
    /// must (a) fail, (b) localize the trace corruption to the containing
    /// chunk, and (c) localize the execution divergence to the exact item
    /// and column, with the recorded and computed bit patterns differing
    /// in precisely the flipped bit.
    #[test]
    fn prop_injected_bit_flip_is_detected_and_localized(
        seed in 0u64..10_000,
        points in 4usize..20,
        chunk in 1usize..6,
        target in 0usize..1_000,
        column in 0usize..2,
        bit in 0u32..64,
    ) {
        let target = target % points;
        let deck = parse_full_deck(&staircase_deck(seed, points, "analytic")).unwrap();
        let plan = compile(&deck).unwrap();
        let dir = temp_dir("prop-flip");
        let (_, summary) = record_deck(&deck, &plan, &options(2, Some(chunk)), &dir).unwrap();

        // Flip `bit` of the item's `column`-th value, in place in the file.
        let trace_path = dir.join(&summary.analyses[0].1);
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let marker = format!("item {target} ");
        let mut flipped_bits = None;
        let corrupted: String = text
            .lines()
            .map(|line| {
                let Some(payload) = line.strip_prefix(&marker) else {
                    return format!("{line}\n");
                };
                let tokens: Vec<String> = payload
                    .split_whitespace()
                    .enumerate()
                    .map(|(position, token)| {
                        if position != column {
                            return token.to_string();
                        }
                        let bits = u64::from_str_radix(token, 16).unwrap() ^ (1u64 << bit);
                        flipped_bits = Some(bits);
                        format!("{bits:016x}")
                    })
                    .collect();
                format!("{marker}{}\n", tokens.join(" "))
            })
            .collect();
        std::fs::write(&trace_path, corrupted).unwrap();

        let report = verify_trace_dir(&dir, &options(3, None)).unwrap();
        prop_assert!(!report.is_clean());
        let verdict = &report.analyses[0];
        // The integrity check catches the file edit at the right chunk…
        prop_assert_eq!(verdict.corrupt_chunk, Some(target / chunk));
        // …and the re-execution pinpoints item, column and both patterns.
        let divergence = verdict.divergence.expect("one flipped bit must diverge");
        prop_assert_eq!(divergence.item, target);
        prop_assert_eq!(divergence.chunk, target / chunk);
        prop_assert_eq!(divergence.row, 0);
        prop_assert_eq!(divergence.column, column);
        use single_electronics::exec::TraceValue;
        let TraceValue::Bits(recorded) = divergence.recorded else {
            return Err(TestCaseError::Fail("recorded value missing".into()));
        };
        let TraceValue::Bits(computed) = divergence.computed else {
            return Err(TestCaseError::Fail("computed value missing".into()));
        };
        prop_assert_eq!(recorded, flipped_bits.unwrap());
        prop_assert_eq!(recorded ^ computed, 1u64 << bit, "exactly the flipped bit differs");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The committed corpus: one trace directory per example deck.
const GOLDEN_DECKS: &[&str] = &[
    "array16x16_background",
    "chain256_transport",
    "ensemble_repeats",
    "hybrid_mvl_gate",
    "mosfet_follower",
    "pulse_train",
    "set_staircase",
    "stability_map",
];

/// The golden regression: every committed trace directory still verifies
/// clean against a live re-execution, and a fresh recording of its example
/// deck reproduces the committed files byte for byte.
#[test]
fn golden_trace_corpus_verifies_and_reproduces_byte_identically() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden_root = root.join("tests/golden");

    // The corpus covers every example deck — a new deck without a golden
    // trace (or a stale trace for a removed deck) fails here.
    let mut committed: Vec<String> = std::fs::read_dir(&golden_root)
        .expect("tests/golden/ exists")
        .filter_map(Result::ok)
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    committed.sort();
    assert_eq!(committed, GOLDEN_DECKS, "golden corpus out of sync");
    let mut decks: Vec<String> = std::fs::read_dir(root.join("examples/decks"))
        .unwrap()
        .filter_map(Result::ok)
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter_map(|name| name.strip_suffix(".cir").map(str::to_string))
        .collect();
    decks.sort();
    assert_eq!(decks, GOLDEN_DECKS, "example decks drifted from the corpus");

    for stem in GOLDEN_DECKS {
        let golden_dir = golden_root.join(stem);

        // 1. The recording still replays bit-identically.
        let report = verify_trace_dir(&golden_dir, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(report.is_clean(), "{stem} diverged: {:?}", report.analyses);

        // 2. A fresh recording reproduces every committed byte.
        let deck_path = root.join("examples/decks").join(format!("{stem}.cir"));
        let deck = parse_full_deck(&std::fs::read_to_string(&deck_path).unwrap()).unwrap();
        let plan = compile(&deck).unwrap();
        let fresh_dir = temp_dir(&format!("golden-{stem}"));
        record_deck(&deck, &plan, &ExecOptions::default(), &fresh_dir).unwrap();

        let list = |dir: &Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .unwrap()
                .filter_map(Result::ok)
                .filter_map(|entry| entry.file_name().into_string().ok())
                .collect();
            names.sort();
            names
        };
        assert_eq!(
            list(&golden_dir),
            list(&fresh_dir),
            "{stem}: file set drifted"
        );
        for name in list(&golden_dir) {
            let golden_bytes = std::fs::read(golden_dir.join(&name)).unwrap();
            let fresh_bytes = std::fs::read(fresh_dir.join(&name)).unwrap();
            assert!(
                golden_bytes == fresh_bytes,
                "{stem}/{name}: a fresh recording no longer reproduces the committed bytes"
            );
        }
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }
}
