//! Integration tests of the unified transient layer: the SPICE
//! backward-Euler integrator, the kinetic Monte-Carlo event clock, the
//! hybrid co-simulator and the quasi-static analytic adapter all implement
//! [`TransientEngine`] and run through the same parallel
//! [`TransientRunner`], with bit-identical serial and parallel ensembles.

use proptest::prelude::*;
use single_electronics::montecarlo::{MonteCarloSimulator, SimulationOptions};
use single_electronics::prelude::*;

/// The reference SET as a tunnel system for the detailed engines.
fn reference_system(vds: f64, vg: f64) -> TunnelSystem {
    let mut builder = TunnelSystemBuilder::new();
    let island = builder.island("island", 0.0);
    let drain = builder.external("drain", vds);
    let source = builder.external("source", 0.0);
    let gate = builder.external("gate", vg);
    builder.junction("JD", drain, island, 0.5e-18, 100e3);
    builder.junction("JS", island, source, 0.5e-18, 100e3);
    builder.capacitor("CG", gate, island, 1e-18);
    builder.build().expect("valid reference system")
}

/// The gate voltage of the conductance peak (gate charge e/2 at 1 aF).
fn peak_gate() -> f64 {
    E / (2.0 * 1e-18)
}

/// The acceptance requirement: one pulse train, three engine families, one
/// trait surface — a drain pulse on the analytic SET device must drive a
/// visible on/off current contrast through every backend, all reached from
/// the `single_electronics` facade.
#[test]
fn a_pulse_train_runs_through_all_three_backends() {
    let pulse = Waveform::pulse(0.0, 1e-3, 20e-9, 40e-9, 1e-6).unwrap();
    let times: Vec<f64> = (1..8).map(|i| i as f64 * 10e-9).collect();
    let runner = TransientRunner::new().with_seed(42);

    // 1. SPICE family: the analytic SET compact model in a netlist, drain
    //    driven through its voltage source.
    let deck = format!(
        "pulsed set\nVD d 0 0\nVG g 0 {}\nX1 d g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n",
        peak_gate()
    );
    let netlist = se_netlist::parse_deck(&deck).unwrap();
    let spice = SpiceTransientEngine::new(
        Circuit::new(&netlist).unwrap(),
        NewtonOptions::default(),
        1e-9,
    )
    .unwrap();
    let spice_trace = runner
        .run(&spice, &[("VD", pulse.clone())], &["VD"], &times)
        .unwrap();

    // 2. Monte-Carlo family: the same device as a tunnel system, sampled
    //    by the kinetic event clock (window-averaged currents).
    let kmc = MonteCarloSimulator::new(
        reference_system(0.0, peak_gate()),
        SimulationOptions::new(1.0).with_seed(5),
    )
    .unwrap();
    let kmc_trace = runner
        .run(&kmc, &[("drain", pulse.clone())], &["JD"], &times)
        .unwrap();

    // 3. Hybrid family: the tunnel-junction netlist inside a SPICE
    //    envelope, co-simulated to convergence at each sample.
    let hybrid_deck = format!(
        "pulsed hybrid set\nVD vd 0 0\nVG gate 0 {}\nRL vd drain 1k\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n",
        peak_gate()
    );
    let hybrid_netlist = se_netlist::parse_deck(&hybrid_deck).unwrap();
    let hybrid = HybridTransientEngine::new(&hybrid_netlist, HybridOptions::new(1.0)).unwrap();
    let hybrid_trace = runner
        .run(&hybrid, &[("VD", pulse)], &["J1"], &times)
        .unwrap();

    // Sample 1 (t = 20 ns) through sample 5 (t = 60 ns) see the pulse; the
    // first and last samples see zero drain bias. Every family must show
    // the contrast.
    for (name, trace) in [
        ("spice", &spice_trace),
        ("kmc", &kmc_trace),
        ("hybrid", &hybrid_trace),
    ] {
        assert_eq!(trace.len(), times.len(), "{name}");
        assert_eq!(trace.observable_count(), 1, "{name}");
        let on = trace.at(2, 0).abs().max(trace.at(3, 0).abs());
        let off = trace.at(0, 0).abs().max(trace.at(6, 0).abs());
        assert!(on > 3.0 * off.max(1e-13), "{name}: on {on} vs off {off}");
    }
}

/// Corner-sweep ensembles (different pulse amplitudes) through the hybrid
/// engine are deterministic: the same seed reproduces the same traces, and
/// serial equals parallel.
#[test]
fn hybrid_ensembles_are_bit_identical_serial_vs_parallel() {
    let deck = format!(
        "hybrid corners\nVD vd 0 0\nVG gate 0 {}\nRL vd drain 100k\nJ1 drain island C=0.5a R=100k\nJ2 island 0 C=0.5a R=100k\nCG gate island 1a\n",
        peak_gate()
    );
    let netlist = se_netlist::parse_deck(&deck).unwrap();
    let engine = HybridTransientEngine::new(&netlist, HybridOptions::new(1.0)).unwrap();
    let scenarios: Vec<Scenario> = [0.5e-3, 1e-3, 2e-3]
        .iter()
        .map(|&amp| {
            Scenario::new(format!("amplitude {amp}"))
                .drive("VD", Waveform::step(0.0, amp, 1e-9).unwrap())
        })
        .collect();
    let times = [0.5e-9, 2e-9];
    let parallel = TransientRunner::new()
        .with_seed(9)
        .run_ensemble(&engine, &scenarios, &["J1"], &times)
        .unwrap();
    let serial = TransientRunner::new()
        .with_seed(9)
        .serial()
        .run_ensemble(&engine, &scenarios, &["J1"], &times)
        .unwrap();
    assert_eq!(parallel, serial);
    // Larger drive corners draw larger currents after the step.
    assert!(parallel[2].at(1, 0).abs() > parallel[0].at(1, 0).abs());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite requirement: serial and parallel `TransientRunner`
    /// ensembles are bit-identical for every seed, step count and backend
    /// choice.
    #[test]
    fn prop_transient_ensembles_are_scheduling_independent(
        seed in 0_u64..1_000_000,
        steps in 2_usize..6,
        backend in 0_usize..3,
        repeats in 2_usize..5,
    ) {
        let times: Vec<f64> = (1..=steps).map(|i| i as f64 * 10e-9).collect();
        let pulse = Waveform::pulse(0.0, 1e-3, 10e-9, 20e-9, 1e-6).unwrap();

        let run = |serial: bool| -> Vec<TransientTrace> {
            let runner = if serial {
                TransientRunner::new().with_seed(seed).serial()
            } else {
                TransientRunner::new().with_seed(seed)
            };
            match backend {
                // Quasi-static analytic SET (deterministic).
                0 => {
                    let set = SingleElectronTransistor::symmetric(1e-18, 0.5e-18, 100e3).unwrap();
                    let engine = QuasiStatic::new(
                        set.stationary_engine(1.0, 0.0).unwrap().with_bias(0.0, peak_gate()),
                    );
                    runner
                        .run_repeats(&engine, &[("drain", pulse.clone())], &["drain"], &times, repeats)
                        .unwrap()
                }
                // Kinetic Monte-Carlo event clock (stochastic).
                1 => {
                    let kmc = MonteCarloSimulator::new(
                        reference_system(0.0, peak_gate()),
                        SimulationOptions::new(1.0)
                            .with_seed(1)
                            .with_equilibration(50),
                    )
                    .unwrap();
                    runner
                        .run_repeats(&kmc, &[("drain", pulse.clone())], &["JD"], &times, repeats)
                        .unwrap()
                }
                // SPICE backward-Euler integrator (deterministic).
                _ => {
                    let deck = format!(
                        "prop set\nVD d 0 0\nVG g 0 {}\nX1 d g 0 SET CG=1a CS=0.5a CD=0.5a RS=100k RD=100k\n",
                        peak_gate()
                    );
                    let netlist = se_netlist::parse_deck(&deck).unwrap();
                    let engine = SpiceTransientEngine::new(
                        Circuit::new(&netlist).unwrap(),
                        NewtonOptions::default(),
                        5e-9,
                    )
                    .unwrap();
                    runner
                        .run_repeats(&engine, &[("VD", pulse.clone())], &["VD"], &times, repeats)
                        .unwrap()
                }
            }
        };

        let parallel = run(false);
        let serial = run(true);
        prop_assert_eq!(parallel.len(), repeats);
        prop_assert_eq!(parallel, serial);
    }

    /// Distinct ensemble seeds decorrelate stochastic repeats, and the
    /// derived per-repeat seeds differ within one ensemble.
    #[test]
    fn prop_stochastic_repeats_explore_distinct_streams(seed in 0_u64..1_000_000) {
        let times = [10e-9, 20e-9];
        let kmc = MonteCarloSimulator::new(
            reference_system(1e-3, peak_gate()),
            SimulationOptions::new(1.0).with_seed(1).with_equilibration(50),
        )
        .unwrap();
        let repeats = TransientRunner::new()
            .with_seed(seed)
            .run_repeats(&kmc, &[], &["JD"], &times, 3)
            .unwrap();
        prop_assert!(repeats[0] != repeats[1]);
        let reseeded = TransientRunner::new()
            .with_seed(seed.wrapping_add(1))
            .run_repeats(&kmc, &[], &["JD"], &times, 3)
            .unwrap();
        prop_assert!(repeats[0] != reseeded[0]);
    }
}
